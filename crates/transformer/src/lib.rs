//! # twocs-transformer — Transformer training workloads as operator graphs
//!
//! The paper studies Transformer *training iterations*: sequences of GEMMs,
//! element-wise operators, and collectives determined entirely by the model
//! hyperparameters and the distributed configuration. This crate generates
//! those sequences:
//!
//! * [`hyper::Hyperparams`] — `H`, `SL`, `B`, heads, layers, FF width,
//!   precision (the paper's Table 1).
//! * [`parallel::ParallelConfig`] — tensor-, data-, pipeline-, and
//!   expert-parallel degrees, with divisibility validation.
//! * [`ops`] / [`layer`] / [`backward`] — the operator sequences of an
//!   encoder/decoder layer, forward and backward, with Megatron-style TP
//!   slicing and the paper's four serialized all-reduces per layer.
//! * [`graph_builder`] — lowers an entire training iteration to a
//!   `twocs-sim` task graph: TP all-reduces serialized on the critical
//!   path, DP gradient all-reduces overlapped with backprop.
//! * [`memory`] — parameter/optimizer/activation memory accounting,
//!   powering the paper's Figure 6 (memory gap) and Figure 9(b)
//!   (required TP degree).
//! * [`zoo`] — the published models of Table 2 (BERT → PaLM) plus the
//!   futuristic PaLM-1×/2×/3× configurations.
//! * [`moe`] / [`pipeline`] — the §6.1 extensions: expert parallelism with
//!   all-to-all dispatch and pipeline parallelism with p2p activations.
//!
//! ## Example
//!
//! ```
//! use twocs_transformer::hyper::Hyperparams;
//! use twocs_transformer::parallel::ParallelConfig;
//! use twocs_transformer::layer::encoder_layer_forward;
//!
//! let hp = Hyperparams::builder(4096).seq_len(2048).batch(1).build()?;
//! let par = ParallelConfig::new().tensor(16).data(8);
//! par.validate(&hp)?;
//! let ops = encoder_layer_forward(&hp, &par);
//! // Two serialized TP all-reduces in the forward pass.
//! assert_eq!(ops.iter().filter(|o| o.is_comm()).count(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backward;
pub mod error;
pub mod graph_builder;
pub mod hyper;
pub mod layer;
pub mod memory;
pub mod moe;
pub mod ops;
pub mod parallel;
pub mod pipeline;
pub mod zoo;

pub use error::ModelError;
pub use hyper::Hyperparams;
pub use ops::Op;
pub use parallel::ParallelConfig;
