//! Lowering a training iteration to a simulator task graph.
//!
//! The builder produces the task graph of one iteration *as seen by one
//! representative device* (all TP/DP peers are symmetric): forward ops and
//! serialized TP all-reduces chained on the critical path, backward ops
//! chained in reverse, and per-layer DP gradient all-reduces issued on the
//! comm stream with **no compute successor except the optimizer step** —
//! exactly the asynchronous overlap of the paper's Figure 3(a).

use crate::backward::{decoder_layer_backward, encoder_layer_backward, layer_grad_allreduce};
use crate::hyper::Hyperparams;
use crate::layer::{decoder_layer_forward, encoder_layer_forward, with_tp_comm_style, TpCommStyle};
use crate::memory::params_per_device;
use crate::ops::Op;
use crate::parallel::ParallelConfig;
use crate::zoo::LayerKind;
use twocs_collectives::{Collective, CollectiveCostModel};
use twocs_hw::memops::MemOpKind;
use twocs_hw::network::NetworkSpec;
use twocs_hw::DeviceSpec;
use twocs_sim::graph::TaskGraph;
use twocs_sim::task::{DeviceId, OpClass, TaskId, TaskKind};
use twocs_sim::SimTime;

/// How data-parallel gradients are synchronized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DpStrategy {
    /// Classic DDP: one all-reduce of each layer's gradients, overlapped
    /// with backprop.
    #[default]
    AllReduce,
    /// ZeRO-1/2-style sharding: gradients are *reduce-scattered* during
    /// backprop (half the all-reduce volume, overlapped) and the updated
    /// parameters are *all-gathered* after the optimizer step (exposed).
    /// Total wire volume matches the all-reduce; its placement differs.
    ZeroShard,
}

/// Configurable lowering of one iteration; see the module docs.
#[derive(Debug, Clone)]
pub struct IterationBuilder<'a> {
    hyper: &'a Hyperparams,
    parallel: &'a ParallelConfig,
    device: &'a DeviceSpec,
    comm_model: CollectiveCostModel,
    dp_network: Option<NetworkSpec>,
    dp_strategy: DpStrategy,
    layers_override: Option<u64>,
    include_optimizer: bool,
    tp_ar_scale: f64,
    tp_comm_style: TpCommStyle,
    layer_kind: LayerKind,
}

impl<'a> IterationBuilder<'a> {
    /// Create a builder for `hyper` × `parallel` on `device`.
    #[must_use]
    pub fn new(
        hyper: &'a Hyperparams,
        parallel: &'a ParallelConfig,
        device: &'a DeviceSpec,
    ) -> Self {
        Self {
            hyper,
            parallel,
            device,
            comm_model: CollectiveCostModel::default(),
            dp_network: None,
            dp_strategy: DpStrategy::default(),
            layers_override: None,
            include_optimizer: true,
            tp_ar_scale: 1.0,
            tp_comm_style: TpCommStyle::AllReduce,
            layer_kind: LayerKind::Encoder,
        }
    }

    /// Use sequence parallelism (reduce-scatter + all-gather pairs) for
    /// the TP activation synchronization instead of all-reduces.
    #[must_use]
    pub fn tp_comm_style(mut self, style: TpCommStyle) -> Self {
        self.tp_comm_style = style;
        self
    }

    /// Build encoder–decoder *decoder* layers (with cross-attention)
    /// instead of encoder/decoder-only layers. `EncoderDecoder` maps to
    /// the decoder stack; `Encoder`/`Decoder` both use the standard layer
    /// (the paper: masking does not change training cost).
    #[must_use]
    pub fn layer_kind(mut self, kind: LayerKind) -> Self {
        self.layer_kind = kind;
        self
    }

    fn forward_ops(&self) -> Vec<Op> {
        let ops = match self.layer_kind {
            LayerKind::EncoderDecoder => decoder_layer_forward(self.hyper, self.parallel),
            _ => encoder_layer_forward(self.hyper, self.parallel),
        };
        with_tp_comm_style(ops, self.tp_comm_style)
    }

    fn backward_ops(&self) -> Vec<Op> {
        let ops = match self.layer_kind {
            LayerKind::EncoderDecoder => decoder_layer_backward(self.hyper, self.parallel),
            _ => encoder_layer_backward(self.hyper, self.parallel),
        };
        with_tp_comm_style(ops, self.tp_comm_style)
    }

    /// Scale the *exposed* duration of serialized TP all-reduces by
    /// `scale` ∈ (0, 1]. Models the paper's §5 Technique 3 — fine-grained
    /// overlap of data generation with communication hides `1 − scale` of
    /// each critical-path collective.
    ///
    /// # Panics
    /// Panics if `scale` is outside `(0, 1]`.
    #[must_use]
    pub fn tp_ar_scale(mut self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "tp_ar_scale must be in (0, 1], got {scale}"
        );
        self.tp_ar_scale = scale;
        self
    }

    /// Choose how DP gradients are synchronized (default: all-reduce).
    #[must_use]
    pub fn dp_strategy(mut self, strategy: DpStrategy) -> Self {
        self.dp_strategy = strategy;
        self
    }

    /// Override the collective cost model.
    #[must_use]
    pub fn comm_model(mut self, model: CollectiveCostModel) -> Self {
        self.comm_model = model;
        self
    }

    /// Price DP gradient all-reduces on a different network (e.g. a slower
    /// inter-node fabric, paper §4.3.7) while TP stays on the device's own
    /// network.
    #[must_use]
    pub fn dp_network(mut self, network: NetworkSpec) -> Self {
        self.dp_network = Some(network);
        self
    }

    /// Simulate only `layers` layers (e.g. one layer for ROI profiling).
    #[must_use]
    pub fn layers(mut self, layers: u64) -> Self {
        self.layers_override = Some(layers);
        self
    }

    /// Include the trailing optimizer step (default true).
    #[must_use]
    pub fn optimizer(mut self, include: bool) -> Self {
        self.include_optimizer = include;
        self
    }

    fn op_time(&self, op: &Op) -> f64 {
        use crate::ops::{CommScope, OpKind};
        // DP collectives may run on a different (inter-node) network.
        if let (
            Some(net),
            OpKind::AllReduce {
                elements,
                participants,
                scope,
            },
        ) = (&self.dp_network, op.kind())
        {
            if *scope == CommScope::DataParallel {
                return self.comm_model.node_time(
                    Collective::AllReduce,
                    elements * self.hyper.precision().bytes(),
                    *participants as usize,
                    net,
                );
            }
        }
        let t = op.time_on(self.device, self.hyper.precision(), &self.comm_model);
        if op.is_serialized_comm() {
            t * self.tp_ar_scale
        } else {
            t
        }
    }

    fn layer_count(&self) -> u64 {
        self.layers_override
            .unwrap_or(self.hyper.layers() / self.parallel.pp())
    }

    /// Time of a DP collective of `bytes` over the configured DP network.
    fn dp_collective_time(&self, collective: Collective, bytes: u64) -> f64 {
        let net = self
            .dp_network
            .as_ref()
            .unwrap_or_else(|| self.device.network());
        self.comm_model
            .node_time(collective, bytes, self.parallel.dp() as usize, net)
    }

    /// Append `op` as a task chained after `prev`, returning the new id.
    fn chain(&self, g: &mut TaskGraph, prev: Option<TaskId>, op: &Op, label: String) -> TaskId {
        let deps: Vec<TaskId> = prev.into_iter().collect();
        let secs = self.op_time(op);
        if op.is_comm() {
            g.collective(vec![DeviceId(0)], label, secs, &deps)
        } else {
            g.compute(DeviceId(0), label, op.class(), secs, &deps)
        }
    }

    /// Build the full training-iteration graph (forward + backward +
    /// overlapped DP gradient all-reduces + optimizer).
    #[must_use]
    pub fn build_training(&self) -> TaskGraph {
        let mut g = TaskGraph::new(1);
        let layers = self.layer_count();
        let fwd_ops = self.forward_ops();
        let bwd_ops = self.backward_ops();
        let grad_ar = layer_grad_allreduce(self.hyper, self.parallel);

        let mut prev: Option<TaskId> = None;
        for li in 0..layers {
            for op in &fwd_ops {
                prev = Some(self.chain(&mut g, prev, op, format!("l{li}.{}", op.name())));
            }
        }
        let mut ar_ids = Vec::new();
        for li in (0..layers).rev() {
            for op in &bwd_ops {
                prev = Some(self.chain(&mut g, prev, op, format!("l{li}.{}", op.name())));
            }
            if let Some(ar) = &grad_ar {
                // Depends on this layer's backward; nothing downstream of
                // it except the optimizer -> overlappable. Secondary comm
                // stream: DP gradient collectives must not contend with
                // the critical-path TP all-reduces.
                let grad_bytes = ar.comm_bytes(self.hyper.precision());
                let (name, secs) = match self.dp_strategy {
                    DpStrategy::AllReduce => (format!("l{li}.{}", ar.name()), self.op_time(ar)),
                    DpStrategy::ZeroShard => (
                        format!("l{li}.dp_grad_rs"),
                        self.dp_collective_time(Collective::ReduceScatter, grad_bytes),
                    ),
                };
                let id = g.collective_on(
                    vec![DeviceId(0)],
                    name,
                    secs,
                    &prev.into_iter().collect::<Vec<_>>(),
                    true,
                );
                ar_ids.push(id);
            }
        }
        if self.include_optimizer {
            let mut deps: Vec<TaskId> = prev.into_iter().collect();
            deps.extend(ar_ids);
            let params = params_per_device(self.hyper, self.parallel);
            // Adam update streams params + grads + moments through memory.
            let secs =
                self.device
                    .memop_time(MemOpKind::Elementwise, params * 8, self.hyper.precision());
            let opt = g.push(
                "optimizer_step",
                OpClass::Other,
                TaskKind::Compute {
                    device: DeviceId(0),
                },
                SimTime::from_secs_f64(secs),
                &deps,
            );
            // ZeRO: gather the updated (sharded) parameters before the
            // next iteration can start — exposed communication.
            if self.dp_strategy == DpStrategy::ZeroShard && self.parallel.dp() > 1 {
                let param_bytes = params * self.hyper.precision().bytes();
                let secs = self.dp_collective_time(Collective::AllGather, param_bytes);
                g.collective(vec![DeviceId(0)], "zero_param_ag", secs, &[opt]);
            }
        }
        g
    }

    /// Build the training-iteration graph for a full `group` of TP peers
    /// as explicit devices: each device runs the per-layer operator chain
    /// and the TP all-reduces become real multi-device collectives. Used
    /// to validate the single-representative-device lowering.
    ///
    /// # Panics
    /// Panics if `group` does not match the tensor-parallel degree.
    #[must_use]
    pub fn build_training_group(&self, group: usize) -> TaskGraph {
        assert_eq!(
            group as u64,
            self.parallel.tp(),
            "group size must equal the TP degree"
        );
        let mut g = TaskGraph::new(group);
        let layers = self.layer_count();
        let fwd_ops = self.forward_ops();
        let bwd_ops = self.backward_ops();
        let grad_ar = layer_grad_allreduce(self.hyper, self.parallel);
        let all_devices: Vec<DeviceId> = (0..group).map(DeviceId).collect();

        let mut prev: Vec<Option<TaskId>> = vec![None; group];
        let emit = |g: &mut TaskGraph, prev: &mut Vec<Option<TaskId>>, op: &Op, li: u64| {
            let secs = self.op_time(op);
            if op.is_comm() {
                // One collective joining every peer's chain.
                let deps: Vec<TaskId> = prev.iter().filter_map(|p| *p).collect();
                let id = g.collective(
                    all_devices.clone(),
                    format!("l{li}.{}", op.name()),
                    secs,
                    &deps,
                );
                prev.iter_mut().for_each(|p| *p = Some(id));
            } else {
                for (d, slot) in prev.iter_mut().enumerate() {
                    let deps: Vec<TaskId> = slot.iter().copied().collect();
                    *slot = Some(g.compute(
                        DeviceId(d),
                        format!("l{li}.{}", op.name()),
                        op.class(),
                        secs,
                        &deps,
                    ));
                }
            }
        };
        for li in 0..layers {
            for op in &fwd_ops {
                emit(&mut g, &mut prev, op, li);
            }
        }
        for li in (0..layers).rev() {
            for op in &bwd_ops {
                emit(&mut g, &mut prev, op, li);
            }
            if let Some(ar) = &grad_ar {
                let secs = self.op_time(ar);
                let deps: Vec<TaskId> = prev.iter().filter_map(|p| *p).collect();
                g.collective_on(
                    all_devices.clone(),
                    format!("l{li}.{}", ar.name()),
                    secs,
                    &deps,
                    true,
                );
            }
        }
        g
    }

    /// Build a training iteration where every layer is an MoE layer
    /// (dense attention + routed expert FFN), paper §6.1.1.
    #[must_use]
    pub fn build_moe_training(&self, moe: &crate::moe::MoeConfig) -> TaskGraph {
        let mut g = TaskGraph::new(1);
        let layers = self.layer_count();
        let fwd_ops = crate::moe::moe_layer_forward(self.hyper, self.parallel, moe);
        let bwd_ops = crate::moe::moe_layer_backward(self.hyper, self.parallel, moe);
        let grad_ar = layer_grad_allreduce(self.hyper, self.parallel);

        let mut prev: Option<TaskId> = None;
        for li in 0..layers {
            for op in &fwd_ops {
                prev = Some(self.chain(&mut g, prev, op, format!("l{li}.{}", op.name())));
            }
        }
        for li in (0..layers).rev() {
            for op in &bwd_ops {
                prev = Some(self.chain(&mut g, prev, op, format!("l{li}.{}", op.name())));
            }
            if let Some(ar) = &grad_ar {
                let secs = self.op_time(ar);
                g.collective_on(
                    vec![DeviceId(0)],
                    format!("l{li}.{}", ar.name()),
                    secs,
                    &prev.into_iter().collect::<Vec<_>>(),
                    true,
                );
            }
        }
        g
    }

    /// Build a forward-only (inference) graph, §6.3.
    #[must_use]
    pub fn build_inference(&self) -> TaskGraph {
        let mut g = TaskGraph::new(1);
        let fwd_ops = self.forward_ops();
        let mut prev: Option<TaskId> = None;
        for li in 0..self.layer_count() {
            for op in &fwd_ops {
                prev = Some(self.chain(&mut g, prev, op, format!("l{li}.{}", op.name())));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twocs_sim::Engine;

    fn hp() -> Hyperparams {
        Hyperparams::builder(4096)
            .heads(32)
            .layers(4)
            .seq_len(2048)
            .batch(1)
            .build()
            .unwrap()
    }

    #[test]
    fn training_graph_runs_and_has_comm() {
        let hyper = hp();
        let par = ParallelConfig::new().tensor(8).data(4);
        let dev = DeviceSpec::mi210();
        let g = IterationBuilder::new(&hyper, &par, &dev).build_training();
        let r = Engine::new().run(&g).unwrap();
        assert!(r.makespan() > SimTime::ZERO);
        assert!(r.comm_time() > SimTime::ZERO);
        assert!(r.compute_time() > SimTime::ZERO);
    }

    #[test]
    fn tp_allreduces_are_exposed_dp_allreduces_overlap() {
        let hyper = hp();
        let dev = DeviceSpec::mi210();
        // TP only: every AR is serialized -> exposed comm == comm busy.
        let par_tp = ParallelConfig::new().tensor(8);
        let g = IterationBuilder::new(&hyper, &par_tp, &dev).build_training();
        let r = Engine::new().run(&g).unwrap();
        assert_eq!(r.exposed_comm_time(), r.comm_time());

        // DP only: gradient ARs can hide behind backprop almost entirely.
        let par_dp = ParallelConfig::new().data(4);
        let g = IterationBuilder::new(&hyper, &par_dp, &dev).build_training();
        let r = Engine::new().run(&g).unwrap();
        assert!(
            r.exposed_comm_time().as_secs_f64() < 0.5 * r.comm_time().as_secs_f64(),
            "DP comm should be mostly hidden: exposed {} of {}",
            r.exposed_comm_time(),
            r.comm_time()
        );
    }

    #[test]
    fn inference_is_cheaper_than_training() {
        let hyper = hp();
        let par = ParallelConfig::new().tensor(8);
        let dev = DeviceSpec::mi210();
        let b = IterationBuilder::new(&hyper, &par, &dev);
        let t_train = Engine::new().run(&b.build_training()).unwrap().makespan();
        let t_inf = Engine::new().run(&b.build_inference()).unwrap().makespan();
        assert!(t_inf.as_secs_f64() < 0.5 * t_train.as_secs_f64());
    }

    #[test]
    fn layer_override_scales_linearly() {
        let hyper = hp();
        let par = ParallelConfig::new().tensor(8);
        let dev = DeviceSpec::mi210();
        let t1 = Engine::new()
            .run(
                &IterationBuilder::new(&hyper, &par, &dev)
                    .layers(1)
                    .optimizer(false)
                    .build_training(),
            )
            .unwrap()
            .makespan()
            .as_secs_f64();
        let t4 = Engine::new()
            .run(
                &IterationBuilder::new(&hyper, &par, &dev)
                    .layers(4)
                    .optimizer(false)
                    .build_training(),
            )
            .unwrap()
            .makespan()
            .as_secs_f64();
        let ratio = t4 / t1;
        assert!((3.9..=4.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn slow_dp_network_lengthens_comm_without_touching_tp() {
        let hyper = hp();
        let par = ParallelConfig::new().tensor(8).data(4);
        let dev = DeviceSpec::mi210();
        let base = Engine::new()
            .run(&IterationBuilder::new(&hyper, &par, &dev).build_training())
            .unwrap();
        let slow_net = dev.network().with_inter_node_slowdown(8.0);
        // Price DP collectives at inter-node quality: swap ring bandwidth
        // for one 8x slower.
        let dp_net = NetworkSpec::new(
            slow_net.inter_node(),
            slow_net.inter_node(),
            dev.network().ring_allreduce_bandwidth() / 8.0,
            twocs_hw::PinMode::None,
        )
        .unwrap();
        let slow = Engine::new()
            .run(
                &IterationBuilder::new(&hyper, &par, &dev)
                    .dp_network(dp_net)
                    .build_training(),
            )
            .unwrap();
        assert!(slow.comm_time() > base.comm_time());
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::moe::MoeConfig;
    use twocs_sim::Engine;

    fn hp() -> Hyperparams {
        Hyperparams::builder(4096)
            .heads(32)
            .layers(4)
            .seq_len(2048)
            .batch(1)
            .build()
            .unwrap()
    }

    #[test]
    fn group_simulation_matches_representative_device() {
        // The multi-device TP-group lowering and the representative-device
        // lowering must agree: peers are symmetric.
        let hyper = hp();
        let par = ParallelConfig::new().tensor(8);
        let dev = DeviceSpec::mi210();
        let builder = IterationBuilder::new(&hyper, &par, &dev).optimizer(false);
        let single = Engine::new().run(&builder.build_training()).unwrap();
        let group = Engine::new().run(&builder.build_training_group(8)).unwrap();
        let m_ratio = group.makespan().as_secs_f64() / single.makespan().as_secs_f64();
        assert!((0.99..=1.01).contains(&m_ratio), "makespan ratio {m_ratio}");
        let f_single = single.comm_fraction();
        let f_group = group.comm_fraction();
        assert!(
            (f_single - f_group).abs() < 0.01,
            "comm fraction {f_single} vs {f_group}"
        );
        // And the group graph really spans 8 devices.
        assert_eq!(group.per_device().len(), 8);
    }

    #[test]
    fn zero_shard_moves_comm_from_overlap_to_exposed() {
        let hyper = hp();
        let par = ParallelConfig::new().tensor(8).data(8);
        let dev = DeviceSpec::mi210();
        let base = Engine::new()
            .run(&IterationBuilder::new(&hyper, &par, &dev).build_training())
            .unwrap();
        let zero = Engine::new()
            .run(
                &IterationBuilder::new(&hyper, &par, &dev)
                    .dp_strategy(DpStrategy::ZeroShard)
                    .build_training(),
            )
            .unwrap();
        // The reduce-scatter half overlaps like before but is smaller...
        assert!(zero.comm_time() > SimTime::ZERO);
        // ...and the parameter all-gather at the end is exposed.
        assert!(
            zero.exposed_comm_time() > base.exposed_comm_time(),
            "ZeRO must expose the param all-gather: {} vs {}",
            zero.exposed_comm_time(),
            base.exposed_comm_time()
        );
    }

    #[test]
    fn moe_iteration_runs_and_has_alltoall_on_critical_path() {
        let hyper = hp();
        let par = ParallelConfig::new().tensor(4).data(2).expert(8);
        let dev = DeviceSpec::mi210();
        let builder = IterationBuilder::new(&hyper, &par, &dev).optimizer(false);
        let dense = Engine::new().run(&builder.build_training()).unwrap();
        let moe = Engine::new()
            .run(&builder.build_moe_training(&MoeConfig::switch(8)))
            .unwrap();
        // MoE at equal hidden size has similar FFN flops (cf ~1.25) but
        // adds the all-to-alls: more exposed comm than the dense model.
        assert!(moe.exposed_comm_time() > dense.exposed_comm_time());
        assert!(moe.makespan() > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn group_size_must_match_tp() {
        let hyper = hp();
        let par = ParallelConfig::new().tensor(8);
        let dev = DeviceSpec::mi210();
        let _ = IterationBuilder::new(&hyper, &par, &dev).build_training_group(4);
    }
}

#[cfg(test)]
mod style_tests {
    use super::*;
    use twocs_sim::Engine;

    fn hp() -> Hyperparams {
        Hyperparams::builder(8192)
            .heads(64)
            .layers(4)
            .seq_len(2048)
            .batch(1)
            .build()
            .unwrap()
    }

    #[test]
    fn sequence_parallel_iteration_costs_about_the_same_comm() {
        // SP trades activation memory for the same wire volume; iteration
        // time should be within a few percent of the all-reduce style.
        let hyper = hp();
        let par = ParallelConfig::new().tensor(16);
        let dev = DeviceSpec::mi210();
        let ar = Engine::new()
            .run(
                &IterationBuilder::new(&hyper, &par, &dev)
                    .optimizer(false)
                    .build_training(),
            )
            .unwrap();
        let sp = Engine::new()
            .run(
                &IterationBuilder::new(&hyper, &par, &dev)
                    .tp_comm_style(TpCommStyle::SequenceParallel)
                    .optimizer(false)
                    .build_training(),
            )
            .unwrap();
        let ratio = sp.makespan().as_secs_f64() / ar.makespan().as_secs_f64();
        assert!(
            (0.9..=1.15).contains(&ratio),
            "SP/AR makespan ratio {ratio}"
        );
        // Twice the collective count on the critical path.
        let count = |g: &twocs_sim::TaskGraph| {
            g.tasks()
                .iter()
                .filter(|t| t.class == twocs_sim::OpClass::Comm)
                .count()
        };
        let g_ar = IterationBuilder::new(&hyper, &par, &dev)
            .optimizer(false)
            .build_training();
        let g_sp = IterationBuilder::new(&hyper, &par, &dev)
            .tp_comm_style(TpCommStyle::SequenceParallel)
            .optimizer(false)
            .build_training();
        assert_eq!(count(&g_sp), 2 * count(&g_ar));
    }

    #[test]
    fn encoder_decoder_iteration_is_costlier_with_more_ars() {
        let hyper = hp();
        let par = ParallelConfig::new().tensor(16);
        let dev = DeviceSpec::mi210();
        let enc = Engine::new()
            .run(
                &IterationBuilder::new(&hyper, &par, &dev)
                    .optimizer(false)
                    .build_training(),
            )
            .unwrap();
        let dec = Engine::new()
            .run(
                &IterationBuilder::new(&hyper, &par, &dev)
                    .layer_kind(LayerKind::EncoderDecoder)
                    .optimizer(false)
                    .build_training(),
            )
            .unwrap();
        assert!(dec.makespan() > enc.makespan());
        // 6 serialized ARs per layer instead of 4: comm time ~1.5x.
        let ratio = dec.comm_time().as_secs_f64() / enc.comm_time().as_secs_f64();
        assert!((1.4..=1.6).contains(&ratio), "comm ratio {ratio}");
    }
}
