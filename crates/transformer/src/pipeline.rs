//! Pipeline-parallelism extension (paper §6.1.2).
//!
//! Pipeline parallelism splits the layer stack into stages, adding
//! point-to-point activation transfers on the critical path and — in the
//! GPipe-style schedule — an idle *bubble* of `(S−1)/(M+S−1)` that must be
//! amortized with `M` micro-batches. Large `M` needs large batch sizes,
//! which is exactly what the memory wall forbids (§3.5): the paper's
//! reason for focusing on DP + TP.

use crate::hyper::Hyperparams;
use crate::ops::{Op, OpKind};
use crate::parallel::ParallelConfig;
use twocs_collectives::CollectiveCostModel;
use twocs_hw::DeviceSpec;
use twocs_sim::graph::TaskGraph;
use twocs_sim::task::{DeviceId, OpClass, TaskId};

/// A GPipe-style pipeline schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineSchedule {
    /// Number of pipeline stages `S`.
    pub stages: u64,
    /// Number of micro-batches `M` per iteration.
    pub micro_batches: u64,
}

impl PipelineSchedule {
    /// Create a schedule.
    ///
    /// # Panics
    /// Panics if either count is zero.
    #[must_use]
    pub fn new(stages: u64, micro_batches: u64) -> Self {
        assert!(stages > 0, "stages must be non-zero");
        assert!(micro_batches > 0, "micro_batches must be non-zero");
        Self {
            stages,
            micro_batches,
        }
    }

    /// Fraction of the iteration spent in the pipeline bubble:
    /// `(S−1) / (M + S−1)`.
    #[must_use]
    pub fn bubble_fraction(&self) -> f64 {
        let s = self.stages as f64;
        let m = self.micro_batches as f64;
        (s - 1.0) / (m + s - 1.0)
    }

    /// Iteration time given the *whole-batch* per-stage compute time and
    /// the per-micro-batch boundary transfer time:
    /// `(M + S − 1) · (T_stage/M + t_p2p)`.
    ///
    /// # Panics
    /// Panics if `stage_time` or `p2p_time` are negative.
    #[must_use]
    pub fn iteration_time(&self, stage_time: f64, p2p_time: f64) -> f64 {
        assert!(stage_time >= 0.0 && p2p_time >= 0.0);
        let m = self.micro_batches as f64;
        let rounds = m + self.stages as f64 - 1.0;
        rounds * (stage_time / m + p2p_time)
    }
}

/// The activation transfer at one stage boundary for one micro-batch:
/// `B·SL·H / M` elements.
#[must_use]
pub fn boundary_transfer(hyper: &Hyperparams, schedule: &PipelineSchedule) -> Op {
    let elements = (hyper.tokens() * hyper.hidden()).div_ceil(schedule.micro_batches);
    Op::new("pp_boundary_p2p", OpKind::PointToPoint { elements })
}

/// Build a GPipe-style forward-pipeline task graph over `S` stage devices
/// and `M` micro-batches: stage `s` processes micro-batch `m` after (a)
/// its own micro-batch `m−1` and (b) stage `s−1`'s micro-batch `m` has
/// arrived over the boundary transfer. The simulated makespan exhibits
/// exactly the `(S−1)` bubble rounds of
/// [`PipelineSchedule::iteration_time`].
///
/// Per-stage compute cost is the forward time of `layers/S` layers at
/// `1/M`-th of the batch (approximated by dividing the full-batch stage
/// time by `M`, which is accurate when per-kernel overheads are small).
#[must_use]
pub fn build_pipeline_forward(
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
    device: &DeviceSpec,
    schedule: &PipelineSchedule,
) -> TaskGraph {
    let comm_model = CollectiveCostModel::default();
    let stages = schedule.stages as usize;
    let micro = schedule.micro_batches;

    // Full-batch per-stage compute time, split across micro-batches.
    let layer_ops = crate::layer::encoder_layer_forward(hyper, parallel);
    let layer_time: f64 = layer_ops
        .iter()
        .map(|op| op.time_on(device, hyper.precision(), &comm_model))
        .sum();
    let layers_per_stage = (hyper.layers() / schedule.stages).max(1);
    let stage_time = layer_time * layers_per_stage as f64 / micro as f64;
    let p2p = boundary_transfer(hyper, schedule).time_on(device, hyper.precision(), &comm_model);

    let mut g = TaskGraph::new(stages);
    // last[s] = the previous micro-batch's compute on stage s.
    let mut last: Vec<Option<TaskId>> = vec![None; stages];
    for m in 0..micro {
        let mut arrived: Option<TaskId> = None; // boundary transfer into this stage
        for (s, slot) in last.iter_mut().enumerate() {
            let mut deps: Vec<TaskId> = Vec::new();
            deps.extend(*slot);
            deps.extend(arrived);
            let compute = g.compute(
                DeviceId(s),
                format!("m{m}.s{s}.fwd"),
                OpClass::Gemm,
                stage_time,
                &deps,
            );
            *slot = Some(compute);
            arrived = if s + 1 < stages {
                Some(g.transfer(
                    DeviceId(s),
                    DeviceId(s + 1),
                    format!("m{m}.s{s}.p2p"),
                    p2p,
                    &[compute],
                ))
            } else {
                None
            };
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bubble_shrinks_with_micro_batches() {
        let few = PipelineSchedule::new(8, 4).bubble_fraction();
        let many = PipelineSchedule::new(8, 64).bubble_fraction();
        assert!(many < few);
        assert!((PipelineSchedule::new(8, 1).bubble_fraction() - 7.0 / 8.0).abs() < 1e-12);
        assert_eq!(PipelineSchedule::new(1, 4).bubble_fraction(), 0.0);
    }

    #[test]
    fn iteration_time_approaches_ideal_with_many_micro_batches() {
        let stage = 1.0; // 1 s of compute per stage for the full batch
        let ideal = PipelineSchedule::new(8, 512).iteration_time(stage, 0.0);
        assert!((ideal - 1.0).abs() < 0.02, "got {ideal}");
        let bubbly = PipelineSchedule::new(8, 2).iteration_time(stage, 0.0);
        assert!(bubbly > 4.0, "got {bubbly}");
    }

    #[test]
    fn p2p_cost_adds_per_round() {
        let s = PipelineSchedule::new(4, 4);
        let with = s.iteration_time(1.0, 0.01);
        let without = s.iteration_time(1.0, 0.0);
        assert!((with - without - 7.0 * 0.01).abs() < 1e-12);
    }

    #[test]
    fn boundary_elements_split_by_micro_batch() {
        let hp = Hyperparams::builder(4096)
            .seq_len(2048)
            .batch(8)
            .build()
            .unwrap();
        let op = boundary_transfer(&hp, &PipelineSchedule::new(4, 8));
        match op.kind() {
            OpKind::PointToPoint { elements } => {
                assert_eq!(*elements, 2048 * 8 * 4096 / 8);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert!(op.is_serialized_comm());
    }

    #[test]
    #[should_panic(expected = "stages")]
    fn zero_stages_rejected() {
        let _ = PipelineSchedule::new(0, 4);
    }

    #[test]
    fn simulated_pipeline_matches_analytic_iteration_time() {
        use twocs_sim::Engine;
        let hyper = Hyperparams::builder(4096)
            .heads(32)
            .layers(8)
            .seq_len(1024)
            .batch(8)
            .build()
            .unwrap();
        let par = ParallelConfig::new().pipeline(4);
        let dev = DeviceSpec::mi210();
        for micro in [4u64, 8, 16] {
            let schedule = PipelineSchedule::new(4, micro);
            let g = build_pipeline_forward(&hyper, &par, &dev, &schedule);
            let sim = Engine::new().run(&g).unwrap().makespan().as_secs_f64();
            // Analytic GPipe time with the same per-stage cost.
            let comm_model = CollectiveCostModel::default();
            let layer_time: f64 = crate::layer::encoder_layer_forward(&hyper, &par)
                .iter()
                .map(|op| op.time_on(&dev, hyper.precision(), &comm_model))
                .sum();
            let stage_full = layer_time * 2.0; // 8 layers / 4 stages
            let p2p =
                boundary_transfer(&hyper, &schedule).time_on(&dev, hyper.precision(), &comm_model);
            let analytic = schedule.iteration_time(stage_full, p2p);
            // The simulator lets a stage's outbound transfer overlap its
            // next micro-batch's compute (separate streams), so it runs
            // slightly *faster* than the fully-serialized analytic bound.
            let err = (sim - analytic) / analytic;
            assert!(
                (-0.06..=0.005).contains(&err),
                "micro={micro}: sim {sim} vs analytic {analytic} (err {err})"
            );
        }
    }

    #[test]
    fn more_micro_batches_shrink_simulated_bubble() {
        use twocs_sim::Engine;
        let hyper = Hyperparams::builder(4096)
            .heads(32)
            .layers(8)
            .seq_len(1024)
            .batch(16)
            .build()
            .unwrap();
        let par = ParallelConfig::new().pipeline(4);
        let dev = DeviceSpec::mi210();
        let t = |micro: u64| {
            let schedule = PipelineSchedule::new(4, micro);
            let g = build_pipeline_forward(&hyper, &par, &dev, &schedule);
            Engine::new().run(&g).unwrap().makespan().as_secs_f64()
        };
        assert!(t(16) < t(4), "more micro-batches must amortize the bubble");
    }
}
