//! Training memory accounting.
//!
//! Memory is the paper's forcing function: models grow faster than device
//! memory (Figure 6), which forces small batch sizes and large TP degrees
//! (Figure 9(b)), which in turn erode compute's edge and slack over
//! communication. This module implements:
//!
//! * [`training_memory`] — per-device bytes for parameters, gradients,
//!   optimizer state (Adam: fp32 master weights + two moments), and
//!   activations (Megatron-style checkpoint-free accounting).
//! * [`required_tp`] — the smallest supported TP degree at which a model
//!   fits a device.
//! * [`paper_tp_projection`] — the paper's §4.3.2 estimate
//!   `TP = base_TP · p / s` (model-size ratio over memory-capacity ratio).

use crate::error::ModelError;
use crate::hyper::Hyperparams;
use crate::layer::layer_weight_elements;
use crate::parallel::ParallelConfig;
use std::fmt;
use twocs_hw::DeviceSpec;

/// Per-device training memory, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Model parameters at training precision.
    pub params: u64,
    /// Gradients at training precision.
    pub grads: u64,
    /// Optimizer state (fp32 master copy + Adam moments).
    pub optimizer: u64,
    /// Stored activations for the backward pass.
    pub activations: u64,
}

impl MemoryBreakdown {
    /// Total bytes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.params + self.grads + self.optimizer + self.activations
    }
}

impl fmt::Display for MemoryBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gib = |b: u64| b as f64 / (1u64 << 30) as f64;
        write!(
            f,
            "params {:.2} GiB + grads {:.2} GiB + optim {:.2} GiB + act {:.2} GiB = {:.2} GiB",
            gib(self.params),
            gib(self.grads),
            gib(self.optimizer),
            gib(self.activations),
            gib(self.total())
        )
    }
}

/// Bytes of Adam optimizer state per parameter: fp32 master weight plus
/// two fp32 moments.
pub const ADAM_BYTES_PER_PARAM: u64 = 12;

/// Per-device parameter elements (layers sliced by TP, layers divided by
/// PP, embeddings sliced by TP).
#[must_use]
pub fn params_per_device(hyper: &Hyperparams, parallel: &ParallelConfig) -> u64 {
    let layers_local = hyper.layers() / parallel.pp();
    let embed = (hyper.vocab() + hyper.seq_len()) * hyper.hidden() / parallel.tp();
    layers_local * layer_weight_elements(hyper, parallel) + embed
}

/// Per-device activation bytes for one training iteration without
/// activation checkpointing, following the Megatron-LM accounting: per
/// layer `SL·B·H·(10 + 24/TP + 5·heads·SL/(H·TP))` bytes at fp16, scaled
/// to the configured precision.
#[must_use]
pub fn activation_bytes(hyper: &Hyperparams, parallel: &ParallelConfig) -> u64 {
    let sbh = (hyper.seq_len() * hyper.batch() * hyper.hidden()) as f64;
    let tp = parallel.tp() as f64;
    let attn = 5.0 * hyper.heads() as f64 * hyper.seq_len() as f64 / (hyper.hidden() as f64 * tp);
    let per_layer_fp16 = sbh * (10.0 + 24.0 / tp + attn);
    let layers_local = (hyper.layers() / parallel.pp()) as f64;
    let scale = hyper.precision().bytes() as f64 / 2.0;
    (per_layer_fp16 * layers_local * scale) as u64
}

/// How activations are kept for the backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ActivationPolicy {
    /// Store every intermediate (fastest, most memory).
    #[default]
    Full,
    /// Activation checkpointing: store only each layer's input and
    /// recompute the rest during backprop (how very large models are
    /// actually trained).
    Checkpointed,
    /// Checkpointing plus sequence parallelism: the stored layer input is
    /// itself sharded `1/TP` across the tensor-parallel group (Korthikanti
    /// et al.; see [`layer::TpCommStyle`](crate::layer::TpCommStyle)).
    CheckpointedSequenceParallel,
}

/// Per-device activation bytes under `policy`. Checkpointing keeps only
/// each layer's input activation (`SL·B·H` elements).
#[must_use]
pub fn activation_bytes_with(
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
    policy: ActivationPolicy,
) -> u64 {
    match policy {
        ActivationPolicy::Full => activation_bytes(hyper, parallel),
        ActivationPolicy::Checkpointed => {
            let layers_local = hyper.layers() / parallel.pp();
            hyper.tokens() * hyper.hidden() * hyper.precision().bytes() * layers_local
        }
        ActivationPolicy::CheckpointedSequenceParallel => {
            activation_bytes_with(hyper, parallel, ActivationPolicy::Checkpointed)
                .div_ceil(parallel.tp())
        }
    }
}

/// Full per-device training memory breakdown (activations stored in full;
/// see [`training_memory_with`] for checkpointing).
#[must_use]
pub fn training_memory(hyper: &Hyperparams, parallel: &ParallelConfig) -> MemoryBreakdown {
    training_memory_with(hyper, parallel, ActivationPolicy::Full)
}

/// Per-device training memory breakdown under an activation policy.
#[must_use]
pub fn training_memory_with(
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
    policy: ActivationPolicy,
) -> MemoryBreakdown {
    let p = params_per_device(hyper, parallel);
    let prec = hyper.precision().bytes();
    MemoryBreakdown {
        params: p * prec,
        grads: p * prec,
        optimizer: p * ADAM_BYTES_PER_PARAM,
        activations: activation_bytes_with(hyper, parallel, policy),
    }
}

/// ZeRO redundancy-elimination stage (Rajbhandari et al., cited by the
/// paper as \[52\]): which training state is sharded across the
/// data-parallel group instead of replicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ZeroStage {
    /// Everything replicated (plain DDP).
    #[default]
    None,
    /// Stage 1: optimizer state sharded across DP ranks.
    OptimizerState,
    /// Stage 2: optimizer state + gradients sharded.
    Gradients,
    /// Stage 3: optimizer state + gradients + parameters sharded.
    Parameters,
}

/// Per-device training memory under a ZeRO stage: the sharded components
/// divide by the DP degree. Trades communication (reduce-scatter +
/// all-gather instead of overlappable all-reduce, see
/// `graph_builder::DpStrategy`) for capacity — one more lever against the
/// paper's memory wall, at the price of more exposed communication.
#[must_use]
pub fn training_memory_zero(
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
    policy: ActivationPolicy,
    stage: ZeroStage,
) -> MemoryBreakdown {
    let full = training_memory_with(hyper, parallel, policy);
    let dp = parallel.dp();
    let shard = |bytes: u64, sharded: bool| if sharded { bytes.div_ceil(dp) } else { bytes };
    let (opt, grads, params) = match stage {
        ZeroStage::None => (false, false, false),
        ZeroStage::OptimizerState => (true, false, false),
        ZeroStage::Gradients => (true, true, false),
        ZeroStage::Parameters => (true, true, true),
    };
    MemoryBreakdown {
        params: shard(full.params, params),
        grads: shard(full.grads, grads),
        optimizer: shard(full.optimizer, opt),
        activations: full.activations,
    }
}

/// Whether the model fits on `device` under `parallel`, leaving
/// `reserve_fraction` of capacity for workspace/fragmentation.
#[must_use]
pub fn fits(
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
    device: &DeviceSpec,
    reserve_fraction: f64,
) -> bool {
    let usable = (device.mem_capacity() as f64 * (1.0 - reserve_fraction)) as u64;
    training_memory(hyper, parallel).total() <= usable
}

/// The smallest TP degree from `candidates` (ascending) at which the model
/// fits `device` with 10% reserve, assuming activation checkpointing (as
/// very large models are actually trained). Candidates that fail
/// [`ParallelConfig::validate`] are skipped.
///
/// # Errors
/// Returns [`ModelError::DoesNotFit`] when no candidate suffices.
pub fn required_tp(
    hyper: &Hyperparams,
    device: &DeviceSpec,
    candidates: &[u64],
) -> Result<u64, ModelError> {
    const RESERVE: f64 = 0.10;
    let usable = (device.mem_capacity() as f64 * (1.0 - RESERVE)) as u64;
    let mut best_valid: Option<u64> = None;
    for &tp in candidates {
        let parallel = ParallelConfig::new().tensor(tp);
        if parallel.validate(hyper).is_err() {
            continue;
        }
        best_valid = Some(tp);
        let needed = training_memory_with(hyper, &parallel, ActivationPolicy::Checkpointed).total();
        if needed <= usable {
            return Ok(tp);
        }
    }
    // Report the requirement at the largest valid candidate.
    let last = ParallelConfig::new().tensor(best_valid.unwrap_or(1));
    Err(ModelError::DoesNotFit {
        required: training_memory_with(hyper, &last, ActivationPolicy::Checkpointed).total(),
        available: device.mem_capacity(),
    })
}

/// The paper's §4.3.2 TP projection: starting from a base model that needs
/// `base_tp` devices, a model `p`× larger on devices with `s`× the memory
/// capacity needs `base_tp · p / s` devices.
///
/// # Panics
/// Panics if any argument is not strictly positive.
#[must_use]
pub fn paper_tp_projection(base_tp: f64, model_size_ratio: f64, capacity_scale_ratio: f64) -> f64 {
    assert!(
        base_tp > 0.0 && model_size_ratio > 0.0 && capacity_scale_ratio > 0.0,
        "TP projection arguments must be positive"
    );
    base_tp * model_size_ratio / capacity_scale_ratio
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hp(h: u64) -> Hyperparams {
        // Power-of-two head count so every power-of-two TP degree is a
        // valid Megatron sharding.
        Hyperparams::builder(h)
            .heads(if h >= 16_384 { 256 } else { 32 })
            .seq_len(2048)
            .batch(1)
            .layers(96)
            .build()
            .unwrap()
    }

    #[test]
    fn memory_shrinks_with_tp() {
        let hyper = hp(12_288);
        let m1 = training_memory(&hyper, &ParallelConfig::new()).total();
        let m8 = training_memory(&hyper, &ParallelConfig::new().tensor(8)).total();
        assert!(m8 < m1 / 6, "m1 {m1} m8 {m8}");
    }

    #[test]
    fn gpt3_scale_model_does_not_fit_one_mi210() {
        // GPT-3 (175B) needs ~2.8 TB of training state; a 64 GB device
        // cannot hold it, even activations aside.
        let hyper = hp(12_288);
        let dev = DeviceSpec::mi210();
        assert!(!fits(&hyper, &ParallelConfig::new(), &dev, 0.1));
    }

    #[test]
    fn bert_fits_one_mi210() {
        let bert = Hyperparams::builder(1024)
            .heads(16)
            .layers(24)
            .seq_len(512)
            .batch(4)
            .build()
            .unwrap();
        assert!(fits(
            &bert,
            &ParallelConfig::new(),
            &DeviceSpec::mi210(),
            0.1
        ));
    }

    #[test]
    fn required_tp_is_monotone_in_model_size() {
        let dev = DeviceSpec::mi210();
        let candidates = [1, 2, 4, 8, 16, 32, 64, 128, 256];
        let small = required_tp(&hp(4096), &dev, &candidates).unwrap();
        let large = required_tp(&hp(20_480), &dev, &candidates).unwrap();
        assert!(small < large, "small {small} large {large}");
    }

    #[test]
    fn required_tp_errors_when_nothing_fits() {
        let hyper = Hyperparams::builder(65_536)
            .layers(200)
            .seq_len(8192)
            .build()
            .unwrap();
        let e = required_tp(&hyper, &DeviceSpec::mi50(), &[1, 2, 4]);
        assert!(matches!(e, Err(ModelError::DoesNotFit { .. })));
    }

    #[test]
    fn paper_projection_matches_figure_9b_range() {
        // §4.3.2: models 40-60x the 3.9B Megatron BERT (after memory
        // scaling) need TP of ~250-550 starting from base_TP = 8.
        let tp = paper_tp_projection(8.0, 540.0 / 3.9, 2.5);
        assert!((250.0..=550.0).contains(&tp), "projected TP {tp}");
    }

    #[test]
    fn adam_state_dominates_params() {
        let hyper = hp(8192);
        let m = training_memory(&hyper, &ParallelConfig::new().tensor(8));
        assert_eq!(m.optimizer, m.params / 2 * 12 / 2 * 2); // 12 bytes vs 2 -> 6x
        assert!(m.optimizer == 6 * m.params);
    }

    #[test]
    fn activations_scale_with_sl_and_b() {
        let hyper = hp(8192);
        let par = ParallelConfig::new().tensor(8);
        let base = activation_bytes(&hyper, &par);
        let double_sl = activation_bytes(&hyper.clone().with_seq_len(4096), &par);
        // Slightly super-linear in SL (attention term), at least 2x.
        assert!(double_sl >= 2 * base);
        let double_b = activation_bytes(&hyper.clone().with_batch(2), &par);
        assert_eq!(double_b, 2 * base);
    }

    #[test]
    fn sequence_parallel_shards_checkpointed_activations() {
        let hyper = hp(16_384);
        let par = ParallelConfig::new().tensor(64);
        let plain = activation_bytes_with(&hyper, &par, ActivationPolicy::Checkpointed);
        let sp =
            activation_bytes_with(&hyper, &par, ActivationPolicy::CheckpointedSequenceParallel);
        assert_eq!(sp, plain.div_ceil(64));
    }

    #[test]
    fn zero_stages_shed_memory_progressively() {
        let hyper = hp(12_288);
        let par = ParallelConfig::new().tensor(8).data(16);
        let policy = ActivationPolicy::Checkpointed;
        let none = training_memory_zero(&hyper, &par, policy, ZeroStage::None).total();
        let z1 = training_memory_zero(&hyper, &par, policy, ZeroStage::OptimizerState).total();
        let z2 = training_memory_zero(&hyper, &par, policy, ZeroStage::Gradients).total();
        let z3 = training_memory_zero(&hyper, &par, policy, ZeroStage::Parameters).total();
        assert!(none > z1 && z1 > z2 && z2 > z3);
        // ZeRO-1 removes (dp-1)/dp of the Adam state: the biggest chunk.
        let full = training_memory_with(&hyper, &par, policy);
        let saved = none - z1;
        assert_eq!(saved, full.optimizer - full.optimizer.div_ceil(16));
    }

    #[test]
    fn zero3_lets_a_smaller_tp_fit() {
        // ZeRO's selling point: the same model fits with less tensor
        // slicing because DP ranks also share the state.
        let hyper = hp(12_288);
        let policy = ActivationPolicy::Checkpointed;
        let par = ParallelConfig::new().tensor(8).data(64);
        let ddp = training_memory_zero(&hyper, &par, policy, ZeroStage::None).total();
        let z3 = training_memory_zero(&hyper, &par, policy, ZeroStage::Parameters).total();
        let capacity = DeviceSpec::mi210().mem_capacity();
        assert!(ddp > capacity, "DDP at TP=8 should not fit: {ddp}");
        assert!(z3 < capacity, "ZeRO-3 at TP=8 should fit: {z3}");
    }

    #[test]
    fn zero_none_matches_plain_accounting() {
        let hyper = hp(4096);
        let par = ParallelConfig::new().tensor(4).data(8);
        let a = training_memory_zero(&hyper, &par, ActivationPolicy::Full, ZeroStage::None);
        let b = training_memory_with(&hyper, &par, ActivationPolicy::Full);
        assert_eq!(a, b);
    }

    #[test]
    fn breakdown_display_sums() {
        let m = training_memory(&hp(4096), &ParallelConfig::new().tensor(4));
        assert!(m.to_string().contains("GiB"));
        assert_eq!(m.total(), m.params + m.grads + m.optimizer + m.activations);
    }
}
