//! Error type for model construction and validation.

use std::error::Error;
use std::fmt;

/// Error produced when hyperparameters or parallel configurations are
/// inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A hyperparameter was out of range.
    InvalidHyperparameter {
        /// Which hyperparameter.
        name: &'static str,
        /// What went wrong.
        reason: String,
    },
    /// A parallel degree does not divide the dimension it shards.
    IndivisibleSharding {
        /// The sharded dimension, e.g. `"hidden"`.
        dimension: &'static str,
        /// The dimension's value.
        value: u64,
        /// The parallel degree that must divide it.
        degree: u64,
    },
    /// A model does not fit even at the maximum supported parallelism.
    DoesNotFit {
        /// Required memory in bytes (per device after sharding).
        required: u64,
        /// Available memory in bytes.
        available: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidHyperparameter { name, reason } => {
                write!(f, "invalid hyperparameter `{name}`: {reason}")
            }
            ModelError::IndivisibleSharding {
                dimension,
                value,
                degree,
            } => write!(
                f,
                "parallel degree {degree} does not divide {dimension} = {value}"
            ),
            ModelError::DoesNotFit {
                required,
                available,
            } => write!(
                f,
                "model needs {required} bytes per device but only {available} are available"
            ),
        }
    }
}

impl Error for ModelError {}

impl ModelError {
    /// Convenience constructor for [`ModelError::InvalidHyperparameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        ModelError::InvalidHyperparameter {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ModelError::IndivisibleSharding {
            dimension: "hidden",
            value: 1000,
            degree: 3,
        };
        assert!(e.to_string().contains("hidden"));
        assert!(e.to_string().contains('3'));
    }
}
