//! Model hyperparameters (the paper's Table 1).
//!
//! The size of every Transformer operator is a function of four
//! hyperparameters: hidden dimension `H`, sequence length `SL`, batch size
//! `B`, and (via sharding) the tensor-parallel degree `TP`. [`Hyperparams`]
//! also carries the structural parameters — head count, layer count,
//! feed-forward width, vocabulary — needed for whole-model and memory
//! accounting.

use crate::error::ModelError;
use std::fmt;
use twocs_hw::Precision;

/// Hyperparameters of one Transformer model configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Hyperparams {
    hidden: u64,
    heads: u64,
    layers: u64,
    seq_len: u64,
    batch: u64,
    ff_dim: u64,
    vocab: u64,
    precision: Precision,
}

impl Hyperparams {
    /// Start building a configuration around hidden size `hidden`.
    /// Defaults: heads sized for 128-wide heads, 24 layers, `SL` 512,
    /// `B` 1, FF width `4·H`, 50k vocabulary, fp16.
    #[must_use]
    pub fn builder(hidden: u64) -> HyperparamsBuilder {
        HyperparamsBuilder::new(hidden)
    }

    /// Hidden (layer-width) dimension `H`.
    #[must_use]
    pub fn hidden(&self) -> u64 {
        self.hidden
    }

    /// Attention head count.
    #[must_use]
    pub fn heads(&self) -> u64 {
        self.heads
    }

    /// Per-head dimension `H / heads`.
    #[must_use]
    pub fn head_dim(&self) -> u64 {
        self.hidden / self.heads
    }

    /// Encoder/decoder layer count.
    #[must_use]
    pub fn layers(&self) -> u64 {
        self.layers
    }

    /// Sequence length `SL`.
    #[must_use]
    pub fn seq_len(&self) -> u64 {
        self.seq_len
    }

    /// Per-device input batch size `B`.
    #[must_use]
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Feed-forward (FC) inner width, usually `4·H`.
    #[must_use]
    pub fn ff_dim(&self) -> u64 {
        self.ff_dim
    }

    /// Vocabulary size (embeddings / LM head).
    #[must_use]
    pub fn vocab(&self) -> u64 {
        self.vocab
    }

    /// Number format of weights/activations.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Tokens per iteration per model replica, `SL · B` — the paper's
    /// slack-advantage axis (Figure 11).
    #[must_use]
    pub fn tokens(&self) -> u64 {
        self.seq_len * self.batch
    }

    /// Parameters in one layer: `QKV (3H²+3H) + out (H²+H) +
    /// FC (H·ff + ff) + FC (ff·H + H) + 2 LayerNorm (2H each)`.
    #[must_use]
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden;
        let ff = self.ff_dim;
        (3 * h * h + 3 * h) + (h * h + h) + (h * ff + ff) + (ff * h + h) + 4 * h
    }

    /// Total parameters: layers plus token and position embeddings.
    #[must_use]
    pub fn total_params(&self) -> u64 {
        self.layers * self.params_per_layer() + (self.vocab + self.seq_len) * self.hidden
    }

    /// A copy with a different batch size.
    #[must_use]
    pub fn with_batch(mut self, batch: u64) -> Self {
        assert!(batch > 0, "batch must be non-zero");
        self.batch = batch;
        self
    }

    /// A copy with a different sequence length.
    #[must_use]
    pub fn with_seq_len(mut self, seq_len: u64) -> Self {
        assert!(seq_len > 0, "seq_len must be non-zero");
        self.seq_len = seq_len;
        self
    }

    /// A copy with a different precision.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

impl fmt::Display for Hyperparams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "H={} SL={} B={} layers={} heads={} ff={} ({})",
            self.hidden,
            self.seq_len,
            self.batch,
            self.layers,
            self.heads,
            self.ff_dim,
            self.precision
        )
    }
}

/// Builder for [`Hyperparams`]; see [`Hyperparams::builder`].
#[derive(Debug, Clone)]
pub struct HyperparamsBuilder {
    hidden: u64,
    heads: Option<u64>,
    layers: u64,
    seq_len: u64,
    batch: u64,
    ff_dim: Option<u64>,
    vocab: u64,
    precision: Precision,
}

impl HyperparamsBuilder {
    fn new(hidden: u64) -> Self {
        Self {
            hidden,
            heads: None,
            layers: 24,
            seq_len: 512,
            batch: 1,
            ff_dim: None,
            vocab: 50_304,
            precision: Precision::Fp16,
        }
    }

    /// Attention head count (default: `H / 128`, min 1).
    #[must_use]
    pub fn heads(mut self, heads: u64) -> Self {
        self.heads = Some(heads);
        self
    }

    /// Layer count.
    #[must_use]
    pub fn layers(mut self, layers: u64) -> Self {
        self.layers = layers;
        self
    }

    /// Sequence length.
    #[must_use]
    pub fn seq_len(mut self, seq_len: u64) -> Self {
        self.seq_len = seq_len;
        self
    }

    /// Batch size.
    #[must_use]
    pub fn batch(mut self, batch: u64) -> Self {
        self.batch = batch;
        self
    }

    /// Feed-forward width (default `4·H`).
    #[must_use]
    pub fn ff_dim(mut self, ff_dim: u64) -> Self {
        self.ff_dim = Some(ff_dim);
        self
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab(mut self, vocab: u64) -> Self {
        self.vocab = vocab;
        self
    }

    /// Number format.
    #[must_use]
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Validate and build.
    ///
    /// # Errors
    /// Returns [`ModelError::InvalidHyperparameter`] when a dimension is
    /// zero or heads do not divide the hidden size.
    pub fn build(self) -> Result<Hyperparams, ModelError> {
        if self.hidden == 0 {
            return Err(ModelError::invalid("hidden", "must be non-zero"));
        }
        let heads = self.heads.unwrap_or((self.hidden / 128).max(1));
        if heads == 0 {
            return Err(ModelError::invalid("heads", "must be non-zero"));
        }
        if !self.hidden.is_multiple_of(heads) {
            return Err(ModelError::invalid(
                "heads",
                format!("{} heads do not divide hidden size {}", heads, self.hidden),
            ));
        }
        for (name, v) in [
            ("layers", self.layers),
            ("seq_len", self.seq_len),
            ("batch", self.batch),
            ("vocab", self.vocab),
        ] {
            if v == 0 {
                return Err(ModelError::invalid(name, "must be non-zero"));
            }
        }
        let ff_dim = self.ff_dim.unwrap_or(4 * self.hidden);
        if ff_dim == 0 {
            return Err(ModelError::invalid("ff_dim", "must be non-zero"));
        }
        Ok(Hyperparams {
            hidden: self.hidden,
            heads,
            layers: self.layers,
            seq_len: self.seq_len,
            batch: self.batch,
            ff_dim,
            vocab: self.vocab,
            precision: self.precision,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_bert_like() {
        let hp = Hyperparams::builder(1024).heads(16).build().unwrap();
        assert_eq!(hp.hidden(), 1024);
        assert_eq!(hp.head_dim(), 64);
        assert_eq!(hp.ff_dim(), 4096);
        assert_eq!(hp.layers(), 24);
        assert_eq!(hp.precision(), Precision::Fp16);
    }

    #[test]
    fn bert_large_param_count_is_about_0_34b() {
        // Table 2: BERT = 0.34 B parameters.
        let hp = Hyperparams::builder(1024)
            .heads(16)
            .layers(24)
            .seq_len(512)
            .vocab(30_522)
            .build()
            .unwrap();
        let params = hp.total_params() as f64 / 1e9;
        assert!((0.30..=0.38).contains(&params), "got {params}B");
    }

    #[test]
    fn gpt3_param_count_is_about_175b() {
        // Table 2: GPT-3 = 175 B parameters (H=12288, 96 layers).
        let hp = Hyperparams::builder(12_288)
            .heads(96)
            .layers(96)
            .seq_len(2048)
            .build()
            .unwrap();
        let params = hp.total_params() as f64 / 1e9;
        assert!((165.0..=185.0).contains(&params), "got {params}B");
    }

    #[test]
    fn indivisible_heads_rejected() {
        let e = Hyperparams::builder(1000).heads(3).build();
        assert!(matches!(e, Err(ModelError::InvalidHyperparameter { .. })));
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(Hyperparams::builder(0).build().is_err());
        assert!(Hyperparams::builder(128).seq_len(0).build().is_err());
        assert!(Hyperparams::builder(128).batch(0).build().is_err());
    }

    #[test]
    fn tokens_is_sl_times_b() {
        let hp = Hyperparams::builder(1024)
            .seq_len(2048)
            .batch(4)
            .build()
            .unwrap();
        assert_eq!(hp.tokens(), 8192);
    }

    #[test]
    fn with_methods_round_trip() {
        let hp = Hyperparams::builder(1024).build().unwrap();
        let hp2 = hp
            .clone()
            .with_batch(8)
            .with_seq_len(4096)
            .with_precision(Precision::Fp32);
        assert_eq!(hp2.batch(), 8);
        assert_eq!(hp2.seq_len(), 4096);
        assert_eq!(hp2.precision(), Precision::Fp32);
        assert_eq!(hp2.hidden(), hp.hidden());
    }

    #[test]
    fn display_mentions_key_dims() {
        let hp = Hyperparams::builder(4096).seq_len(2048).build().unwrap();
        let s = hp.to_string();
        assert!(s.contains("H=4096"));
        assert!(s.contains("SL=2048"));
    }
}
