//! Mixture-of-experts extension (paper §6.1.1).
//!
//! MoE layers replace the dense FC sub-layer with routed experts. Expert
//! parallelism adds **two serialized all-to-alls** (dispatch and combine)
//! to the critical path of every MoE layer, on top of any TP all-reduces —
//! reinforcing the paper's thesis that communication grows as models
//! scale. Conditional computation also *reduces* per-token FLOPs relative
//! to an equally-parameterized dense model, further raising communication's
//! share.

use crate::hyper::Hyperparams;
use crate::ops::{CommScope, Op, OpKind};
use crate::parallel::ParallelConfig;
use twocs_hw::gemm::GemmShape;
use twocs_hw::memops::MemOpKind;

/// MoE routing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoeConfig {
    /// Total expert count (across the expert-parallel group).
    pub experts: u64,
    /// Experts activated per token.
    pub top_k: u64,
    /// Capacity factor: per-expert buffer slack over the balanced load.
    pub capacity_factor: f64,
}

impl MoeConfig {
    /// A switch-style configuration: `experts` experts, top-1 routing,
    /// 1.25 capacity factor.
    ///
    /// # Panics
    /// Panics if `experts` is zero.
    #[must_use]
    pub fn switch(experts: u64) -> Self {
        assert!(experts > 0, "experts must be non-zero");
        Self {
            experts,
            top_k: 1,
            capacity_factor: 1.25,
        }
    }

    /// Tokens processed per device after routing (balanced assumption).
    #[must_use]
    pub fn routed_tokens(&self, tokens: u64) -> u64 {
        ((tokens * self.top_k) as f64 * self.capacity_factor).ceil() as u64
    }
}

/// Forward operator sequence of one MoE FFN sub-layer (replaces the dense
/// FC sub-layer), per device.
#[must_use]
pub fn moe_ffn_forward(hyper: &Hyperparams, parallel: &ParallelConfig, moe: &MoeConfig) -> Vec<Op> {
    let h = hyper.hidden();
    let ff = hyper.ff_dim();
    let tp = parallel.tp();
    let ep = parallel.ep();
    let tokens = hyper.tokens();
    let routed = moe.routed_tokens(tokens);
    let act = tokens * h;

    let mut ops = vec![
        Op::memop("moe_ln", MemOpKind::LayerNorm, act),
        // Router: token -> expert logits.
        Op::gemm("moe_router_gemm", GemmShape::new(tokens, moe.experts, h)),
        Op::memop(
            "moe_router_softmax",
            MemOpKind::Softmax,
            tokens * moe.experts,
        ),
    ];
    if ep > 1 {
        // Dispatch tokens to their experts' devices: serialized all-to-all.
        ops.push(Op::new(
            "moe_a2a_dispatch",
            OpKind::AllToAll {
                elements: routed * h,
                participants: ep,
                scope: CommScope::Expert,
            },
        ));
    }
    ops.extend([
        Op::gemm("moe_fc1_gemm", GemmShape::new(routed, ff / tp, h)),
        Op::memop("moe_gelu", MemOpKind::Gelu, routed * ff / tp),
        Op::gemm("moe_fc2_gemm", GemmShape::new(routed, h, ff / tp)),
    ]);
    if tp > 1 {
        ops.push(Op::allreduce(
            "moe_tp_ar",
            routed * h,
            tp,
            CommScope::TensorParallel,
        ));
    }
    if ep > 1 {
        ops.push(Op::new(
            "moe_a2a_combine",
            OpKind::AllToAll {
                elements: routed * h,
                participants: ep,
                scope: CommScope::Expert,
            },
        ));
    }
    ops.extend([
        Op::memop("moe_dropout", MemOpKind::Dropout, act),
        Op::memop("moe_residual", MemOpKind::ResidualAdd, act),
    ]);
    ops
}

/// Backward operator sequence of the MoE FFN sub-layer, per device, in
/// execution order: the combine all-to-all reverses first, then the
/// expert GEMMs produce input and weight gradients, then the dispatch
/// all-to-all reverses.
#[must_use]
pub fn moe_ffn_backward(
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
    moe: &MoeConfig,
) -> Vec<Op> {
    let h = hyper.hidden();
    let ff = hyper.ff_dim();
    let tp = parallel.tp();
    let ep = parallel.ep();
    let tokens = hyper.tokens();
    let routed = moe.routed_tokens(tokens);
    let act = tokens * h;

    let mut ops = vec![
        Op::memop("moe_residual_bwd", MemOpKind::ResidualAdd, act),
        Op::memop("moe_dropout_bwd", MemOpKind::Dropout, act),
    ];
    if ep > 1 {
        ops.push(Op::new(
            "moe_a2a_combine_bwd",
            OpKind::AllToAll {
                elements: routed * h,
                participants: ep,
                scope: CommScope::Expert,
            },
        ));
    }
    if tp > 1 {
        ops.push(Op::allreduce(
            "moe_tp_ar_bwd",
            routed * h,
            tp,
            CommScope::TensorParallel,
        ));
    }
    ops.extend([
        Op::gemm("moe_fc2_ig_gemm", GemmShape::new(routed, ff / tp, h)),
        Op::gemm("moe_fc2_wg_gemm", GemmShape::new(ff / tp, h, routed)),
        Op::memop("moe_gelu_bwd", MemOpKind::Gelu, routed * ff / tp),
        Op::gemm("moe_fc1_ig_gemm", GemmShape::new(routed, h, ff / tp)),
        Op::gemm("moe_fc1_wg_gemm", GemmShape::new(h, ff / tp, routed)),
    ]);
    if ep > 1 {
        ops.push(Op::new(
            "moe_a2a_dispatch_bwd",
            OpKind::AllToAll {
                elements: routed * h,
                participants: ep,
                scope: CommScope::Expert,
            },
        ));
    }
    ops.extend([
        Op::gemm("moe_router_ig_gemm", GemmShape::new(tokens, h, moe.experts)),
        Op::gemm("moe_router_wg_gemm", GemmShape::new(moe.experts, h, tokens)),
        Op::memop("moe_ln_bwd", MemOpKind::LayerNorm, act),
    ]);
    ops
}

/// Forward operator sequence of one full MoE layer: the dense attention
/// sub-layer followed by the routed MoE FFN sub-layer.
#[must_use]
pub fn moe_layer_forward(
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
    moe: &MoeConfig,
) -> Vec<Op> {
    let mut ops = crate::layer::attention_sublayer_forward(hyper, parallel);
    ops.extend(moe_ffn_forward(hyper, parallel, moe));
    ops
}

/// Backward operator sequence of one full MoE layer.
#[must_use]
pub fn moe_layer_backward(
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
    moe: &MoeConfig,
) -> Vec<Op> {
    let mut ops = moe_ffn_backward(hyper, parallel, moe);
    ops.extend(crate::backward::attention_sublayer_backward(
        hyper, parallel,
    ));
    ops
}

/// Compute FLOPs per token of the MoE FFN relative to a dense FFN with the
/// same total parameter count (`experts ×` larger). MoE's headline
/// property: capacity grows with expert count while this ratio stays
/// roughly constant (≈ `top_k · capacity_factor / experts`).
#[must_use]
pub fn flops_ratio_vs_dense(
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
    moe: &MoeConfig,
) -> f64 {
    let moe_flops: u64 = moe_ffn_forward(hyper, parallel, moe)
        .iter()
        .map(Op::flops)
        .sum();
    // Equivalent dense FFN with experts x the parameters: ff scaled.
    let dense_flops =
        2 * 2 * hyper.tokens() * (hyper.ff_dim() * moe.experts / parallel.tp()) * hyper.hidden();
    moe_flops as f64 / dense_flops as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hp() -> Hyperparams {
        Hyperparams::builder(4096)
            .heads(32)
            .seq_len(2048)
            .batch(1)
            .build()
            .unwrap()
    }

    #[test]
    fn ep_adds_two_serialized_alltoalls() {
        let par = ParallelConfig::new().tensor(4).expert(8);
        let ops = moe_ffn_forward(&hp(), &par, &MoeConfig::switch(8));
        let a2a = ops
            .iter()
            .filter(|o| matches!(o.kind(), OpKind::AllToAll { .. }))
            .count();
        assert_eq!(a2a, 2);
        assert!(ops.iter().filter(|o| o.is_serialized_comm()).count() >= 2);
    }

    #[test]
    fn no_alltoall_without_ep() {
        let ops = moe_ffn_forward(
            &hp(),
            &ParallelConfig::new().tensor(4),
            &MoeConfig::switch(8),
        );
        assert!(!ops
            .iter()
            .any(|o| matches!(o.kind(), OpKind::AllToAll { .. })));
    }

    #[test]
    fn moe_cheaper_than_equal_capacity_dense() {
        // Top-1 routing over 8 experts: ~1/8 the dense-equivalent FLOPs
        // (modulo capacity factor and router overhead).
        let ratio = flops_ratio_vs_dense(
            &hp(),
            &ParallelConfig::new().expert(8),
            &MoeConfig::switch(8),
        );
        assert!((0.10..=0.30).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn backward_mirrors_forward_comm() {
        let par = ParallelConfig::new().tensor(4).expert(8);
        let moe = MoeConfig::switch(8);
        let fwd = moe_ffn_forward(&hp(), &par, &moe);
        let bwd = moe_ffn_backward(&hp(), &par, &moe);
        let a2a = |ops: &[Op]| {
            ops.iter()
                .filter(|o| matches!(o.kind(), OpKind::AllToAll { .. }))
                .count()
        };
        assert_eq!(a2a(&fwd), a2a(&bwd));
        // Backward FFN GEMM flops ~= 2x forward expert GEMMs (router WG/IG
        // add a little on top).
        let fwd_flops: u64 = fwd.iter().map(Op::flops).sum();
        let bwd_flops: u64 = bwd.iter().map(Op::flops).sum();
        assert!(bwd_flops > fwd_flops && bwd_flops < 3 * fwd_flops);
    }

    #[test]
    fn full_moe_layer_contains_attention_and_experts() {
        let par = ParallelConfig::new().tensor(4).expert(8);
        let moe = MoeConfig::switch(8);
        let fwd = moe_layer_forward(&hp(), &par, &moe);
        assert!(fwd.iter().any(|o| o.name() == "qkv_gemm"));
        assert!(fwd.iter().any(|o| o.name() == "moe_fc1_gemm"));
        let bwd = moe_layer_backward(&hp(), &par, &moe);
        assert!(bwd.iter().any(|o| o.name() == "qkv_wg_gemm"));
        assert!(bwd.iter().any(|o| o.name() == "moe_fc1_wg_gemm"));
    }

    #[test]
    fn capacity_factor_inflates_routed_tokens() {
        let moe = MoeConfig::switch(8);
        assert_eq!(moe.routed_tokens(1000), 1250);
        let top2 = MoeConfig {
            top_k: 2,
            ..MoeConfig::switch(8)
        };
        assert_eq!(top2.routed_tokens(1000), 2500);
    }

    #[test]
    #[should_panic(expected = "experts")]
    fn zero_experts_rejected() {
        let _ = MoeConfig::switch(0);
    }
}
