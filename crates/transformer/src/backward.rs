//! Backward (backpropagation) operator sequences.
//!
//! Each forward GEMM `C = A·B` yields two backward GEMMs: the input/error
//! gradient `dA = dC·Bᵀ` (IG) and the weight gradient `dB = Aᵀ·dC` (WG) —
//! the paper's Figure 5(a). Attention GEMMs have two activation operands,
//! so both of their backward GEMMs are error gradients. Tensor parallelism
//! adds **two more serialized all-reduces** in the backward pass (the
//! Megatron `f` operator), and data parallelism all-reduces each layer's
//! weight gradients, overlappable with the rest of backprop.

use crate::hyper::Hyperparams;
use crate::layer::layer_weight_elements;
use crate::ops::{CommScope, Op};
use crate::parallel::ParallelConfig;
use twocs_hw::gemm::GemmShape;
use twocs_hw::memops::MemOpKind;

/// Backward operator sequence of the FC sub-layer, per device, in
/// execution order.
#[must_use]
pub fn fc_sublayer_backward(hyper: &Hyperparams, parallel: &ParallelConfig) -> Vec<Op> {
    let h = hyper.hidden();
    let ff = hyper.ff_dim();
    let tp = parallel.tp();
    let tokens = hyper.tokens();
    let act = tokens * h;

    let mut ops = vec![
        Op::memop("fc_residual_bwd", MemOpKind::ResidualAdd, act),
        Op::memop("fc_dropout_bwd", MemOpKind::Dropout, act),
        // FC2 (row-parallel): dX = dY · W2ᵀ, dW2 = Xᵀ · dY.
        Op::gemm("fc2_ig_gemm", GemmShape::new(tokens, ff / tp, h)),
        Op::gemm("fc2_wg_gemm", GemmShape::new(ff / tp, h, tokens)),
        Op::memop("gelu_bwd", MemOpKind::Gelu, tokens * ff / tp),
        // FC1 (column-parallel).
        Op::gemm("fc1_ig_gemm", GemmShape::new(tokens, h, ff / tp)),
        Op::gemm("fc1_wg_gemm", GemmShape::new(h, ff / tp, tokens)),
    ];
    if tp > 1 {
        // Megatron `f` backward: reduce partial input gradients.
        ops.push(Op::allreduce(
            "tp_ar_fc_bwd",
            act,
            tp,
            CommScope::TensorParallel,
        ));
    }
    ops.push(Op::memop("ln2_bwd", MemOpKind::LayerNorm, act));
    ops
}

/// Backward operator sequence of the attention sub-layer, per device, in
/// execution order.
#[must_use]
pub fn attention_sublayer_backward(hyper: &Hyperparams, parallel: &ParallelConfig) -> Vec<Op> {
    let h = hyper.hidden();
    let tp = parallel.tp();
    let tokens = hyper.tokens();
    let heads_local = hyper.heads() / tp;
    let head_dim = hyper.head_dim();
    let sl = hyper.seq_len();
    let b = hyper.batch();
    let act = tokens * h;

    let mut ops = vec![
        Op::memop("attn_residual_bwd", MemOpKind::ResidualAdd, act),
        Op::memop("attn_dropout_bwd", MemOpKind::Dropout, act),
        // Output projection (row-parallel).
        Op::gemm("attn_out_ig_gemm", GemmShape::new(tokens, h / tp, h)),
        Op::gemm("attn_out_wg_gemm", GemmShape::new(h / tp, h, tokens)),
        // Context GEMM backward: d_probs and d_V (both activations).
        Op::gemm(
            "attn_ctx_dprobs_gemm",
            GemmShape::batched(sl, sl, head_dim, b * heads_local),
        ),
        Op::gemm(
            "attn_ctx_dv_gemm",
            GemmShape::batched(sl, head_dim, sl, b * heads_local),
        ),
        Op::memop("softmax_bwd", MemOpKind::Softmax, b * heads_local * sl * sl),
        // Score GEMM backward: d_Q and d_K.
        Op::gemm(
            "attn_score_dq_gemm",
            GemmShape::batched(sl, head_dim, sl, b * heads_local),
        ),
        Op::gemm(
            "attn_score_dk_gemm",
            GemmShape::batched(sl, head_dim, sl, b * heads_local),
        ),
        // QKV (column-parallel).
        Op::gemm("qkv_ig_gemm", GemmShape::new(tokens, h, 3 * h / tp)),
        Op::gemm("qkv_wg_gemm", GemmShape::new(3 * h / tp, h, tokens)),
    ];
    if tp > 1 {
        ops.push(Op::allreduce(
            "tp_ar_attn_bwd",
            act,
            tp,
            CommScope::TensorParallel,
        ));
    }
    ops.push(Op::memop("ln1_bwd", MemOpKind::LayerNorm, act));
    ops
}

/// Backward operator sequence of one encoder layer (FC sub-layer then
/// attention sub-layer), per device, in execution order.
#[must_use]
pub fn encoder_layer_backward(hyper: &Hyperparams, parallel: &ParallelConfig) -> Vec<Op> {
    let mut ops = fc_sublayer_backward(hyper, parallel);
    ops.extend(attention_sublayer_backward(hyper, parallel));
    ops
}

/// Backward operator sequence of the cross-attention sub-layer (see
/// [`layer::cross_attention_sublayer_forward`](crate::layer)).
#[must_use]
pub fn cross_attention_sublayer_backward(
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
) -> Vec<Op> {
    let h = hyper.hidden();
    let tp = parallel.tp();
    let tokens = hyper.tokens();
    let heads_local = hyper.heads() / tp;
    let head_dim = hyper.head_dim();
    let sl = hyper.seq_len();
    let b = hyper.batch();
    let act = tokens * h;

    let mut ops = vec![
        Op::memop("xattn_residual_bwd", MemOpKind::ResidualAdd, act),
        Op::memop("xattn_dropout_bwd", MemOpKind::Dropout, act),
        Op::gemm("xattn_out_ig_gemm", GemmShape::new(tokens, h / tp, h)),
        Op::gemm("xattn_out_wg_gemm", GemmShape::new(h / tp, h, tokens)),
        Op::gemm(
            "xattn_ctx_dprobs_gemm",
            GemmShape::batched(sl, sl, head_dim, b * heads_local),
        ),
        Op::gemm(
            "xattn_ctx_dv_gemm",
            GemmShape::batched(sl, head_dim, sl, b * heads_local),
        ),
        Op::memop(
            "xattn_softmax_bwd",
            MemOpKind::Softmax,
            b * heads_local * sl * sl,
        ),
        Op::gemm(
            "xattn_score_dq_gemm",
            GemmShape::batched(sl, head_dim, sl, b * heads_local),
        ),
        Op::gemm(
            "xattn_score_dk_gemm",
            GemmShape::batched(sl, head_dim, sl, b * heads_local),
        ),
        Op::gemm("xattn_q_ig_gemm", GemmShape::new(tokens, h, h / tp)),
        Op::gemm("xattn_q_wg_gemm", GemmShape::new(h / tp, h, tokens)),
        Op::gemm("xattn_kv_ig_gemm", GemmShape::new(tokens, h, 2 * h / tp)),
        Op::gemm("xattn_kv_wg_gemm", GemmShape::new(2 * h / tp, h, tokens)),
    ];
    if tp > 1 {
        ops.push(Op::allreduce(
            "tp_ar_xattn_bwd",
            act,
            tp,
            CommScope::TensorParallel,
        ));
    }
    ops.push(Op::memop("xattn_ln_bwd", MemOpKind::LayerNorm, act));
    ops
}

/// Backward operator sequence of one encoder–decoder *decoder* layer
/// (FC, cross-attention, self-attention — reverse of the forward order).
#[must_use]
pub fn decoder_layer_backward(hyper: &Hyperparams, parallel: &ParallelConfig) -> Vec<Op> {
    let mut ops = fc_sublayer_backward(hyper, parallel);
    ops.extend(cross_attention_sublayer_backward(hyper, parallel));
    ops.extend(attention_sublayer_backward(hyper, parallel));
    ops
}

/// The data-parallel gradient all-reduce for one layer's weights,
/// overlappable with the backward pass of earlier layers.
/// Returns `None` when `DP == 1`.
#[must_use]
pub fn layer_grad_allreduce(hyper: &Hyperparams, parallel: &ParallelConfig) -> Option<Op> {
    if parallel.dp() <= 1 {
        return None;
    }
    Some(Op::allreduce(
        "dp_grad_ar",
        layer_weight_elements(hyper, parallel),
        parallel.dp(),
        CommScope::DataParallel,
    ))
}

/// The paper's region of interest for the DP slack analysis (Eqs. 7–8):
/// the FC1 weight- and input-gradient GEMMs, and the all-reduce of FC1's
/// weight gradient.
///
/// Compute ops total `4·(4H·H/TP·SL·B)` FLOPs (Eq. 7); the all-reduce
/// moves `precision/8 · 4H·H/TP` bytes (Eq. 8); their ratio is the slack
/// `O(SL·B)` (Eq. 9).
#[must_use]
pub fn fc_backward_roi(hyper: &Hyperparams, parallel: &ParallelConfig) -> (Vec<Op>, Op) {
    let h = hyper.hidden();
    let ff = hyper.ff_dim();
    let tp = parallel.tp();
    let tokens = hyper.tokens();
    let compute = vec![
        Op::gemm("fc1_ig_gemm", GemmShape::new(tokens, h, ff / tp)),
        Op::gemm("fc1_wg_gemm", GemmShape::new(h, ff / tp, tokens)),
    ];
    let comm = Op::allreduce(
        "dp_grad_ar_fc1",
        h * ff / tp,
        parallel.dp().max(2),
        CommScope::DataParallel,
    );
    (compute, comm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{encoder_layer_forward, forward_flops};

    fn hp(h: u64, sl: u64, b: u64) -> Hyperparams {
        Hyperparams::builder(h)
            .seq_len(sl)
            .batch(b)
            .build()
            .unwrap()
    }

    #[test]
    fn backward_has_two_gemms_per_forward_gemm() {
        let hyper = hp(4096, 2048, 1);
        let par = ParallelConfig::new().tensor(8);
        let fwd_gemms = encoder_layer_forward(&hyper, &par)
            .iter()
            .filter(|o| o.flops() > 0)
            .count();
        let bwd_gemms = encoder_layer_backward(&hyper, &par)
            .iter()
            .filter(|o| o.flops() > 0)
            .count();
        assert_eq!(bwd_gemms, 2 * fwd_gemms);
    }

    #[test]
    fn backward_flops_are_twice_forward() {
        let hyper = hp(4096, 2048, 1);
        let par = ParallelConfig::new().tensor(8);
        let fwd: u64 = forward_flops(&hyper, &par);
        let bwd: u64 = encoder_layer_backward(&hyper, &par)
            .iter()
            .map(Op::flops)
            .sum();
        assert_eq!(bwd, 2 * fwd);
    }

    #[test]
    fn four_serialized_allreduces_per_layer_total() {
        // §3.3: "In a Transformer layer, there are four such serialized
        // all-reduce operations" (2 forward + 2 backward).
        let hyper = hp(4096, 2048, 1);
        let par = ParallelConfig::new().tensor(8);
        let fwd = encoder_layer_forward(&hyper, &par);
        let bwd = encoder_layer_backward(&hyper, &par);
        let total = fwd
            .iter()
            .chain(bwd.iter())
            .filter(|o| o.is_serialized_comm())
            .count();
        assert_eq!(total, 4);
    }

    #[test]
    fn decoder_backward_mirrors_decoder_forward() {
        use crate::layer::decoder_layer_forward;
        let hyper = hp(4096, 1024, 1);
        let par = ParallelConfig::new().tensor(8);
        let fwd = decoder_layer_forward(&hyper, &par);
        let bwd = decoder_layer_backward(&hyper, &par);
        let gemms = |ops: &[Op]| ops.iter().filter(|o| o.flops() > 0).count();
        // The two score-family GEMMs each get two backward GEMMs; the
        // paired QKV of the encoder path becomes Q + KV in cross
        // attention, still 2 backward GEMMs per forward GEMM.
        assert_eq!(gemms(&bwd), 2 * gemms(&fwd));
        let flops = |ops: &[Op]| ops.iter().map(Op::flops).sum::<u64>();
        assert_eq!(flops(&bwd), 2 * flops(&fwd));
        // Six serialized all-reduces per decoder layer (3 fwd + 3 bwd).
        let ars = fwd
            .iter()
            .chain(bwd.iter())
            .filter(|o| o.is_serialized_comm())
            .count();
        assert_eq!(ars, 6);
    }

    #[test]
    fn grad_allreduce_present_only_with_dp() {
        let hyper = hp(4096, 2048, 1);
        assert!(layer_grad_allreduce(&hyper, &ParallelConfig::new()).is_none());
        let op = layer_grad_allreduce(&hyper, &ParallelConfig::new().data(8)).unwrap();
        assert!(!op.is_serialized_comm());
        assert_eq!(op.participants(), 8);
    }

    #[test]
    fn roi_matches_eq7_and_eq8() {
        let h = 8192u64;
        let sl = 2048u64;
        let b = 2u64;
        let tp = 16u64;
        let hyper = hp(h, sl, b);
        let par = ParallelConfig::new().tensor(tp).data(4);
        let (compute, comm) = fc_backward_roi(&hyper, &par);
        let flops: u64 = compute.iter().map(Op::flops).sum();
        // Eq. 7: 4 · (4H · H/TP · SL · B) with the leading 2 of 2MNK
        // folded in (two GEMMs of 2·(4H/TP)·H·SL·B each).
        assert_eq!(flops, 4 * 4 * h * (h / tp) * sl * b);
        // Eq. 8: 4H²/TP elements.
        assert_eq!(comm.comm_bytes(hyper.precision()), 2 * 4 * h * h / tp);
    }

    #[test]
    fn slack_ratio_is_sl_times_b() {
        // Eq. 9: flops / elements = 4·SL·B (the paper's O(SL·B) slack with
        // its constant).
        let hyper = hp(4096, 1024, 4);
        let par = ParallelConfig::new().tensor(8);
        let (compute, comm) = fc_backward_roi(&hyper, &par);
        let flops: u64 = compute.iter().map(Op::flops).sum();
        let elements = comm.comm_bytes(hyper.precision()) / 2;
        assert_eq!(flops / elements, 4 * hyper.tokens());
    }
}
