//! Forward operator sequences of a Transformer layer.
//!
//! The layer follows the paper's Figure 2(a)/Figure 4: an attention
//! sub-layer and a fully connected (FC) sub-layer, each followed by
//! residual connection and LayerNorm. Under tensor parallelism the GEMMs
//! are sliced Megatron-style — QKV and FC1 column-parallel, the output
//! projection and FC2 row-parallel — which puts **two all-reduces of the
//! layer activations on the forward critical path** (and two more in the
//! backward pass, see [`backward`](crate::backward)): the paper's "four
//! serialized all-reduce operations" per layer.

use crate::hyper::Hyperparams;
use crate::ops::{CommScope, Op};
use crate::parallel::ParallelConfig;
use twocs_hw::gemm::GemmShape;
use twocs_hw::memops::MemOpKind;

/// Forward operator sequence of the attention sub-layer (LayerNorm,
/// QKV, scores, softmax, context, output projection, `g` all-reduce,
/// dropout, residual), per device, in execution order.
#[must_use]
pub fn attention_sublayer_forward(hyper: &Hyperparams, parallel: &ParallelConfig) -> Vec<Op> {
    let h = hyper.hidden();
    let tp = parallel.tp();
    let tokens = hyper.tokens(); // B * SL
    let heads_local = hyper.heads() / tp;
    let head_dim = hyper.head_dim();
    let sl = hyper.seq_len();
    let b = hyper.batch();
    let act = tokens * h; // activation elements

    let mut ops = vec![
        Op::memop("ln1", MemOpKind::LayerNorm, act),
        // Column-parallel QKV projection: each device computes 3H/TP cols.
        Op::gemm("qkv_gemm", GemmShape::new(tokens, 3 * h / tp, h)),
        // Attention scores QK^T, batched over B * local heads.
        Op::gemm(
            "attn_score_gemm",
            GemmShape::batched(sl, sl, head_dim, b * heads_local),
        ),
        Op::memop("softmax", MemOpKind::Softmax, b * heads_local * sl * sl),
        // Context = probs * V.
        Op::gemm(
            "attn_ctx_gemm",
            GemmShape::batched(sl, head_dim, sl, b * heads_local),
        ),
        // Row-parallel output projection: partial sums across devices.
        Op::gemm("attn_out_gemm", GemmShape::new(tokens, h, h / tp)),
    ];
    if tp > 1 {
        // Megatron `g` operator: reduce partial activations (serialized).
        ops.push(Op::allreduce(
            "tp_ar_attn",
            act,
            tp,
            CommScope::TensorParallel,
        ));
    }
    ops.extend([
        Op::memop("attn_dropout", MemOpKind::Dropout, act),
        Op::memop("attn_residual", MemOpKind::ResidualAdd, act),
    ]);
    ops
}

/// Forward operator sequence of the FC sub-layer (LayerNorm, FC1, GeLU,
/// FC2, `g` all-reduce, dropout, residual), per device, in execution
/// order.
#[must_use]
pub fn fc_sublayer_forward(hyper: &Hyperparams, parallel: &ParallelConfig) -> Vec<Op> {
    let h = hyper.hidden();
    let ff = hyper.ff_dim();
    let tp = parallel.tp();
    let tokens = hyper.tokens();
    let act = tokens * h;

    let mut ops = vec![
        Op::memop("ln2", MemOpKind::LayerNorm, act),
        // Column-parallel FC1.
        Op::gemm("fc1_gemm", GemmShape::new(tokens, ff / tp, h)),
        Op::memop("gelu", MemOpKind::Gelu, tokens * ff / tp),
        // Row-parallel FC2: partial sums across devices.
        Op::gemm("fc2_gemm", GemmShape::new(tokens, h, ff / tp)),
    ];
    if tp > 1 {
        ops.push(Op::allreduce(
            "tp_ar_fc",
            act,
            tp,
            CommScope::TensorParallel,
        ));
    }
    ops.extend([
        Op::memop("fc_dropout", MemOpKind::Dropout, act),
        Op::memop("fc_residual", MemOpKind::ResidualAdd, act),
    ]);
    ops
}

/// Forward operator sequence of one encoder layer (attention sub-layer
/// then FC sub-layer), per device, in execution order.
#[must_use]
pub fn encoder_layer_forward(hyper: &Hyperparams, parallel: &ParallelConfig) -> Vec<Op> {
    let mut ops = attention_sublayer_forward(hyper, parallel);
    ops.extend(fc_sublayer_forward(hyper, parallel));
    ops
}

/// Forward operator sequence of the cross-attention sub-layer of an
/// encoder–decoder model (T5 family): queries from the decoder stream,
/// keys/values from the (same-length) encoder output. Structurally a
/// third attention sub-layer, with its own serialized TP all-reduce —
/// encoder–decoder models pay **six** serialized all-reduces per decoder
/// layer instead of four.
#[must_use]
pub fn cross_attention_sublayer_forward(hyper: &Hyperparams, parallel: &ParallelConfig) -> Vec<Op> {
    let h = hyper.hidden();
    let tp = parallel.tp();
    let tokens = hyper.tokens();
    let heads_local = hyper.heads() / tp;
    let head_dim = hyper.head_dim();
    let sl = hyper.seq_len();
    let b = hyper.batch();
    let act = tokens * h;

    let mut ops = vec![
        Op::memop("xattn_ln", MemOpKind::LayerNorm, act),
        // Q from the decoder stream (column-parallel)...
        Op::gemm("xattn_q_gemm", GemmShape::new(tokens, h / tp, h)),
        // ...K and V from the encoder output.
        Op::gemm("xattn_kv_gemm", GemmShape::new(tokens, 2 * h / tp, h)),
        Op::gemm(
            "xattn_score_gemm",
            GemmShape::batched(sl, sl, head_dim, b * heads_local),
        ),
        Op::memop(
            "xattn_softmax",
            MemOpKind::Softmax,
            b * heads_local * sl * sl,
        ),
        Op::gemm(
            "xattn_ctx_gemm",
            GemmShape::batched(sl, head_dim, sl, b * heads_local),
        ),
        Op::gemm("xattn_out_gemm", GemmShape::new(tokens, h, h / tp)),
    ];
    if tp > 1 {
        ops.push(Op::allreduce(
            "tp_ar_xattn",
            act,
            tp,
            CommScope::TensorParallel,
        ));
    }
    ops.extend([
        Op::memop("xattn_dropout", MemOpKind::Dropout, act),
        Op::memop("xattn_residual", MemOpKind::ResidualAdd, act),
    ]);
    ops
}

/// Forward operator sequence of one *decoder* layer of an encoder–decoder
/// model: masked self-attention, cross-attention, FC. (For decoder-only
/// GPT-style models the paper notes the mask does not change training
/// cost, so [`encoder_layer_forward`] covers them.)
#[must_use]
pub fn decoder_layer_forward(hyper: &Hyperparams, parallel: &ParallelConfig) -> Vec<Op> {
    let mut ops = attention_sublayer_forward(hyper, parallel);
    ops.extend(cross_attention_sublayer_forward(hyper, parallel));
    ops.extend(fc_sublayer_forward(hyper, parallel));
    ops
}

/// How tensor-parallel activations are synchronized (Megatron-LM v1 vs
/// the sequence-parallel refinement of Korthikanti et al.).
///
/// Sequence parallelism replaces each critical-path **all-reduce** with a
/// **reduce-scatter + all-gather** pair over the sequence dimension. The
/// wire volume is identical (RS + AG = AR), so the paper's Comp-vs-Comm
/// conclusions are unchanged — but the activations between the pairs are
/// sharded `1/TP`, attacking the memory wall of §3.5 from the activation
/// side (see [`memory::activation_bytes_with`](crate::memory)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TpCommStyle {
    /// Megatron v1: one all-reduce after each row-parallel GEMM.
    #[default]
    AllReduce,
    /// Sequence parallelism: reduce-scatter after the row-parallel GEMM,
    /// all-gather before the next column-parallel GEMM.
    SequenceParallel,
}

/// Replace the serialized TP all-reduces in `ops` with reduce-scatter +
/// all-gather pairs of the same total volume (sequence parallelism).
#[must_use]
pub fn with_tp_comm_style(ops: Vec<Op>, style: TpCommStyle) -> Vec<Op> {
    use crate::ops::OpKind;
    if style == TpCommStyle::AllReduce {
        return ops;
    }
    let mut out = Vec::with_capacity(ops.len() + 4);
    for op in ops {
        match (op.name(), op.kind()) {
            (
                name,
                OpKind::AllReduce {
                    elements,
                    participants,
                    scope,
                },
            ) if op.is_serialized_comm() => {
                let (rs, ag): (&'static str, &'static str) = match name {
                    "tp_ar_attn" => ("tp_rs_attn", "tp_ag_attn"),
                    "tp_ar_fc" => ("tp_rs_fc", "tp_ag_fc"),
                    "tp_ar_attn_bwd" => ("tp_rs_attn_bwd", "tp_ag_attn_bwd"),
                    "tp_ar_fc_bwd" => ("tp_rs_fc_bwd", "tp_ag_fc_bwd"),
                    _ => {
                        out.push(op);
                        continue;
                    }
                };
                out.push(Op::new(
                    rs,
                    OpKind::ReduceScatter {
                        elements: *elements,
                        participants: *participants,
                        scope: *scope,
                    },
                ));
                out.push(Op::new(
                    ag,
                    OpKind::AllGather {
                        elements: *elements,
                        participants: *participants,
                        scope: *scope,
                    },
                ));
            }
            _ => out.push(op),
        }
    }
    out
}

/// Kernel-fusion level for the generated operator sequences (paper §2.1:
/// "element-wise operations ... are often fused with the GEMMs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fusion {
    /// Every operator is a separate kernel.
    #[default]
    None,
    /// GeLU, dropout, and residual adds are folded into the epilogue of
    /// the preceding GEMM (no separate kernel launch or memory pass).
    Epilogue,
    /// Epilogue fusion plus flash-attention-style fusion of the softmax
    /// into the attention GEMMs.
    Flash,
}

impl Fusion {
    /// Whether the named (forward) operator disappears into a neighbouring
    /// GEMM at this fusion level.
    #[must_use]
    pub fn absorbs(self, op_name: &str) -> bool {
        let epilogue = matches!(
            op_name,
            "gelu" | "attn_dropout" | "fc_dropout" | "attn_residual" | "fc_residual"
        );
        match self {
            Fusion::None => false,
            Fusion::Epilogue => epilogue,
            Fusion::Flash => epilogue || op_name == "softmax",
        }
    }
}

/// Forward operator sequence of one encoder layer at a fusion level:
/// the [`Fusion::None`] sequence with absorbed element-wise kernels
/// removed. Communication and GEMM shapes are unchanged — fusion only
/// eliminates launches and memory passes, which is why it *raises* the
/// relative cost of communication.
#[must_use]
pub fn encoder_layer_forward_fused(
    hyper: &Hyperparams,
    parallel: &ParallelConfig,
    fusion: Fusion,
) -> Vec<Op> {
    encoder_layer_forward(hyper, parallel)
        .into_iter()
        .filter(|op| !fusion.absorbs(op.name()))
        .collect()
}

/// Trainable parameter elements of one layer **per device** (weights only,
/// sliced by TP): `(3H² + H² + H·ff + ff·H) / TP` plus biases and the
/// (replicated) LayerNorm parameters.
#[must_use]
pub fn layer_weight_elements(hyper: &Hyperparams, parallel: &ParallelConfig) -> u64 {
    let h = hyper.hidden();
    let ff = hyper.ff_dim();
    let tp = parallel.tp();
    let sliced = (3 * h * h + h * h + h * ff + ff * h) / tp;
    let biases = (3 * h + ff) / tp + 2 * h; // sliced biases + row-parallel outputs
    sliced + biases + 4 * h // + 2 LayerNorms (gamma, beta)
}

/// Total GEMM FLOPs of the forward ops (algorithmic compute cost).
#[must_use]
pub fn forward_flops(hyper: &Hyperparams, parallel: &ParallelConfig) -> u64 {
    encoder_layer_forward(hyper, parallel)
        .iter()
        .map(Op::flops)
        .sum()
}

/// Serialized TP communication bytes of the forward ops.
#[must_use]
pub fn forward_comm_bytes(hyper: &Hyperparams, parallel: &ParallelConfig) -> u64 {
    encoder_layer_forward(hyper, parallel)
        .iter()
        .filter(|o| o.is_serialized_comm())
        .map(|o| o.comm_bytes(hyper.precision()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hp(h: u64, sl: u64, b: u64) -> Hyperparams {
        Hyperparams::builder(h)
            .seq_len(sl)
            .batch(b)
            .build()
            .unwrap()
    }

    #[test]
    fn forward_has_six_gemms() {
        let ops = encoder_layer_forward(&hp(4096, 2048, 1), &ParallelConfig::new().tensor(8));
        let gemms = ops.iter().filter(|o| o.flops() > 0).count();
        assert_eq!(gemms, 6);
    }

    #[test]
    fn two_serialized_allreduces_with_tp() {
        let ops = encoder_layer_forward(&hp(4096, 2048, 1), &ParallelConfig::new().tensor(8));
        assert_eq!(ops.iter().filter(|o| o.is_serialized_comm()).count(), 2);
    }

    #[test]
    fn no_allreduce_without_tp() {
        let ops = encoder_layer_forward(&hp(4096, 2048, 1), &ParallelConfig::new());
        assert_eq!(ops.iter().filter(|o| o.is_comm()).count(), 0);
    }

    #[test]
    fn forward_flops_match_paper_formula() {
        // §3.3: overall forward GEMM ops = (24 H² + 4 SL·H) · SL · B / TP
        // for ff = 4H (QKV 6H² + out 2H² + FC 16H² and attention 4 SL·H).
        let h = 4096u64;
        let sl = 2048u64;
        let b = 2u64;
        let tp = 8u64;
        let hyper = hp(h, sl, b);
        let flops = forward_flops(&hyper, &ParallelConfig::new().tensor(tp));
        let expected = (24 * h * h + 4 * sl * h) * sl * b / tp;
        assert_eq!(flops, expected);
    }

    #[test]
    fn forward_comm_matches_eq5() {
        // Eq. 5: bytes per all-reduce = (precision/8) · H·SL·B; two in the
        // forward pass.
        let hyper = hp(4096, 2048, 2);
        let bytes = forward_comm_bytes(&hyper, &ParallelConfig::new().tensor(8));
        assert_eq!(bytes, 2 * 2 * 4096 * 2048 * 2); // 2 ARs * fp16 * H*SL*B
    }

    #[test]
    fn tp_divides_gemm_widths() {
        let hyper = hp(8192, 1024, 1);
        for tp in [1u64, 2, 4, 8, 16, 32, 64] {
            let ops = encoder_layer_forward(&hyper, &ParallelConfig::new().tensor(tp));
            let per_device: u64 = ops.iter().map(Op::flops).sum();
            let dense: u64 = forward_flops(&hyper, &ParallelConfig::new());
            assert_eq!(per_device, dense / tp, "TP={tp} must slice FLOPs evenly");
        }
    }

    #[test]
    fn decoder_layer_has_three_sublayers_and_three_fwd_ars() {
        let hyper = hp(4096, 1024, 1);
        let par = ParallelConfig::new().tensor(8);
        let enc = encoder_layer_forward(&hyper, &par);
        let dec = decoder_layer_forward(&hyper, &par);
        assert!(dec.len() > enc.len());
        assert_eq!(dec.iter().filter(|o| o.is_serialized_comm()).count(), 3);
        // Cross attention adds Q (H²/TP) + KV (2H²/TP) + out (H²/TP) +
        // 2 attention GEMMs worth of flops.
        let flops = |ops: &[Op]| ops.iter().map(Op::flops).sum::<u64>();
        let h = hyper.hidden();
        let (sl, b, tp) = (hyper.seq_len(), hyper.batch(), par.tp());
        let extra = 2 * (4 * h * h / tp) * sl * b + 2 * 2 * (h / tp) * sl * sl * b;
        assert_eq!(flops(&dec) - flops(&enc), extra);
    }

    #[test]
    fn sequence_parallel_swaps_ars_for_rs_ag_pairs() {
        use twocs_collectives::CollectiveCostModel;
        use twocs_hw::{DeviceSpec, Precision};
        let hyper = hp(8192, 2048, 1);
        let par = ParallelConfig::new().tensor(16);
        let ar = encoder_layer_forward(&hyper, &par);
        let sp = with_tp_comm_style(ar.clone(), TpCommStyle::SequenceParallel);
        // Two ARs become two RS+AG pairs.
        assert_eq!(
            sp.iter().filter(|o| o.is_serialized_comm()).count(),
            2 * ar.iter().filter(|o| o.is_serialized_comm()).count()
        );
        // Total serialized wire volume is unchanged (RS + AG = AR).
        let bytes = |ops: &[Op]| {
            ops.iter()
                .filter(|o| o.is_serialized_comm())
                .map(|o| o.comm_bytes(hyper.precision()))
                .sum::<u64>()
        };
        assert_eq!(bytes(&ar), bytes(&sp));
        // And the priced time is close: the pair pays one extra latency
        // term but moves the same bytes.
        let dev = DeviceSpec::mi210();
        let cm = CollectiveCostModel::default();
        let time = |ops: &[Op]| {
            ops.iter()
                .filter(|o| o.is_serialized_comm())
                .map(|o| o.time_on(&dev, Precision::Fp16, &cm))
                .sum::<f64>()
        };
        let ratio = time(&sp) / time(&ar);
        assert!(
            (0.8..=1.3).contains(&ratio),
            "SP/AR comm time ratio {ratio}"
        );
    }

    #[test]
    fn allreduce_style_is_identity() {
        let hyper = hp(4096, 1024, 1);
        let par = ParallelConfig::new().tensor(8);
        let ops = encoder_layer_forward(&hyper, &par);
        let same = with_tp_comm_style(ops.clone(), TpCommStyle::AllReduce);
        assert_eq!(ops, same);
    }

    #[test]
    fn fusion_drops_elementwise_kernels_only() {
        let hyper = hp(4096, 2048, 1);
        let par = ParallelConfig::new().tensor(8);
        let none = encoder_layer_forward_fused(&hyper, &par, Fusion::None);
        let epi = encoder_layer_forward_fused(&hyper, &par, Fusion::Epilogue);
        let flash = encoder_layer_forward_fused(&hyper, &par, Fusion::Flash);
        assert_eq!(none.len(), encoder_layer_forward(&hyper, &par).len());
        assert!(epi.len() < none.len());
        assert!(flash.len() < epi.len());
        // GEMM flops and comm bytes are invariant under fusion.
        let flops = |ops: &[Op]| ops.iter().map(Op::flops).sum::<u64>();
        let comm = |ops: &[Op]| {
            ops.iter()
                .map(|o| o.comm_bytes(hyper.precision()))
                .sum::<u64>()
        };
        assert_eq!(flops(&none), flops(&flash));
        assert_eq!(comm(&none), comm(&flash));
        // LayerNorms survive every level (pre-LN is a standalone kernel).
        assert!(flash.iter().any(|o| o.name() == "ln1"));
        assert!(flash.iter().any(|o| o.name() == "ln2"));
        assert!(!flash.iter().any(|o| o.name() == "softmax"));
        assert!(epi.iter().any(|o| o.name() == "softmax"));
    }

    #[test]
    fn fusion_raises_communication_share() {
        use twocs_collectives::CollectiveCostModel;
        use twocs_hw::{DeviceSpec, Precision};
        let hyper = hp(4096, 2048, 1);
        let par = ParallelConfig::new().tensor(16);
        let dev = DeviceSpec::mi210();
        let cm = CollectiveCostModel::default();
        let share = |fusion: Fusion| {
            let ops = encoder_layer_forward_fused(&hyper, &par, fusion);
            let total: f64 = ops
                .iter()
                .map(|o| o.time_on(&dev, Precision::Fp16, &cm))
                .sum();
            let comm: f64 = ops
                .iter()
                .filter(|o| o.is_comm())
                .map(|o| o.time_on(&dev, Precision::Fp16, &cm))
                .sum();
            comm / total
        };
        assert!(share(Fusion::Flash) > share(Fusion::None));
    }

    #[test]
    fn weight_elements_scale_inversely_with_tp() {
        let hyper = hp(8192, 1024, 1);
        let w1 = layer_weight_elements(&hyper, &ParallelConfig::new());
        let w8 = layer_weight_elements(&hyper, &ParallelConfig::new().tensor(8));
        let ratio = w1 as f64 / w8 as f64;
        assert!((7.0..=8.1).contains(&ratio), "ratio {ratio}");
        // Dominant term: 12 H² for ff = 4H.
        let h = hyper.hidden();
        assert!(w1 > 12 * h * h && w1 < 13 * h * h);
    }
}
