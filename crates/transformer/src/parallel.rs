//! Distributed-training configuration.
//!
//! The paper studies tensor parallelism (TP — slices every layer, puts
//! all-reduces on the critical path) and data parallelism (DP — replicates
//! the model, overlaps gradient all-reduces with backprop). Pipeline (PP)
//! and expert (EP) parallelism are supported for the §6.1 extensions.

use crate::error::ModelError;
use crate::hyper::Hyperparams;
use std::fmt;

/// Parallel degrees of one training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelConfig {
    tensor: u64,
    data: u64,
    pipeline: u64,
    expert: u64,
}

impl ParallelConfig {
    /// All degrees 1 (single device).
    #[must_use]
    pub fn new() -> Self {
        Self {
            tensor: 1,
            data: 1,
            pipeline: 1,
            expert: 1,
        }
    }

    /// Set the tensor-parallel degree.
    ///
    /// # Panics
    /// Panics if `tp` is zero.
    #[must_use]
    pub fn tensor(mut self, tp: u64) -> Self {
        assert!(tp > 0, "tensor-parallel degree must be non-zero");
        self.tensor = tp;
        self
    }

    /// Set the data-parallel degree.
    ///
    /// # Panics
    /// Panics if `dp` is zero.
    #[must_use]
    pub fn data(mut self, dp: u64) -> Self {
        assert!(dp > 0, "data-parallel degree must be non-zero");
        self.data = dp;
        self
    }

    /// Set the pipeline-parallel degree.
    ///
    /// # Panics
    /// Panics if `pp` is zero.
    #[must_use]
    pub fn pipeline(mut self, pp: u64) -> Self {
        assert!(pp > 0, "pipeline-parallel degree must be non-zero");
        self.pipeline = pp;
        self
    }

    /// Set the expert-parallel degree (MoE).
    ///
    /// # Panics
    /// Panics if `ep` is zero.
    #[must_use]
    pub fn expert(mut self, ep: u64) -> Self {
        assert!(ep > 0, "expert-parallel degree must be non-zero");
        self.expert = ep;
        self
    }

    /// Tensor-parallel degree `TP`.
    #[must_use]
    pub fn tp(&self) -> u64 {
        self.tensor
    }

    /// Data-parallel degree `DP`.
    #[must_use]
    pub fn dp(&self) -> u64 {
        self.data
    }

    /// Pipeline-parallel degree `PP`.
    #[must_use]
    pub fn pp(&self) -> u64 {
        self.pipeline
    }

    /// Expert-parallel degree `EP`.
    #[must_use]
    pub fn ep(&self) -> u64 {
        self.expert
    }

    /// Total devices: `TP · DP · PP`.
    #[must_use]
    pub fn devices(&self) -> u64 {
        self.tensor * self.data * self.pipeline
    }

    /// Check that the degrees divide the dimensions they shard.
    ///
    /// # Errors
    /// Returns [`ModelError::IndivisibleSharding`] when `TP` does not
    /// divide the hidden size, head count, or FF width, or `PP` does not
    /// divide the layer count.
    pub fn validate(&self, hyper: &Hyperparams) -> Result<(), ModelError> {
        let checks = [
            ("hidden", hyper.hidden(), self.tensor),
            ("heads", hyper.heads(), self.tensor),
            ("ff_dim", hyper.ff_dim(), self.tensor),
            ("layers", hyper.layers(), self.pipeline),
        ];
        for (dimension, value, degree) in checks {
            if value % degree != 0 {
                return Err(ModelError::IndivisibleSharding {
                    dimension,
                    value,
                    degree,
                });
            }
        }
        Ok(())
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TP={} DP={} PP={} EP={}",
            self.tensor, self.data, self.pipeline, self.expert
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_device() {
        let p = ParallelConfig::new();
        assert_eq!(p.devices(), 1);
        assert_eq!(p.tp(), 1);
    }

    #[test]
    fn devices_multiply() {
        let p = ParallelConfig::new().tensor(8).data(4).pipeline(2);
        assert_eq!(p.devices(), 64);
    }

    #[test]
    fn validate_accepts_clean_sharding() {
        let hp = Hyperparams::builder(4096)
            .heads(32)
            .layers(24)
            .build()
            .unwrap();
        ParallelConfig::new()
            .tensor(8)
            .pipeline(4)
            .validate(&hp)
            .unwrap();
    }

    #[test]
    fn validate_rejects_indivisible_tp() {
        let hp = Hyperparams::builder(4096).heads(32).build().unwrap();
        let e = ParallelConfig::new().tensor(3).validate(&hp);
        assert!(matches!(e, Err(ModelError::IndivisibleSharding { .. })));
    }

    #[test]
    fn validate_rejects_tp_exceeding_heads() {
        let hp = Hyperparams::builder(4096).heads(16).build().unwrap();
        assert!(ParallelConfig::new().tensor(32).validate(&hp).is_err());
    }

    #[test]
    fn validate_rejects_indivisible_pp() {
        let hp = Hyperparams::builder(1024)
            .heads(16)
            .layers(24)
            .build()
            .unwrap();
        assert!(ParallelConfig::new().pipeline(7).validate(&hp).is_err());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_degree_panics() {
        let _ = ParallelConfig::new().tensor(0);
    }

    #[test]
    fn display() {
        let p = ParallelConfig::new().tensor(8).data(64);
        assert_eq!(p.to_string(), "TP=8 DP=64 PP=1 EP=1");
    }
}
