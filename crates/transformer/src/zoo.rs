//! The model zoo: published Transformers (the paper's Table 2) and the
//! futuristic configurations used throughout the evaluation.

use crate::hyper::Hyperparams;

/// Layer flavour (computationally identical for training, §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Encoder-only (BERT family).
    Encoder,
    /// Decoder-only (GPT family).
    Decoder,
    /// Encoder–decoder (T5 family).
    EncoderDecoder,
}

/// One published (or projected) model configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooModel {
    /// Model name as commonly cited.
    pub name: &'static str,
    /// Publication year.
    pub year: u16,
    /// Layer count.
    pub layers: u64,
    /// Hidden size `H`.
    pub hidden: u64,
    /// Attention head count.
    pub heads: u64,
    /// Sequence length used for training.
    pub seq_len: u64,
    /// Feed-forward (FC) width.
    pub ff_dim: u64,
    /// Reported parameter count, billions.
    pub reported_params_b: f64,
    /// Architecture flavour.
    pub kind: LayerKind,
}

impl ZooModel {
    /// Build [`Hyperparams`] for this model with batch size `batch`.
    ///
    /// # Panics
    /// Panics if the zoo entry is internally inconsistent (a bug in the
    /// table, covered by tests).
    #[must_use]
    pub fn hyperparams(&self, batch: u64) -> Hyperparams {
        Hyperparams::builder(self.hidden)
            .heads(self.heads)
            .layers(self.layers)
            .seq_len(self.seq_len)
            .batch(batch)
            .ff_dim(self.ff_dim)
            .build()
            .expect("zoo entries are valid hyperparameters")
    }

    /// The paper's memory-demand proxy for Figure 6: `H · SL`.
    #[must_use]
    pub fn memory_proxy(&self) -> u64 {
        self.hidden * self.seq_len
    }
}

/// The eight models of the paper's Table 2, chronological order.
#[must_use]
pub fn table2() -> Vec<ZooModel> {
    vec![
        ZooModel {
            name: "BERT",
            year: 2018,
            layers: 24,
            hidden: 1024,
            heads: 16,
            seq_len: 512,
            ff_dim: 4096,
            reported_params_b: 0.34,
            kind: LayerKind::Encoder,
        },
        ZooModel {
            name: "T5",
            year: 2019,
            layers: 24,
            hidden: 1024,
            heads: 128,
            seq_len: 512,
            ff_dim: 4096,
            reported_params_b: 11.0,
            kind: LayerKind::EncoderDecoder,
        },
        ZooModel {
            name: "GPT-2",
            year: 2019,
            layers: 48,
            hidden: 1600,
            heads: 25,
            seq_len: 1024,
            ff_dim: 6400,
            reported_params_b: 1.54,
            kind: LayerKind::Decoder,
        },
        ZooModel {
            name: "Megatron-LM",
            year: 2019,
            layers: 74,
            hidden: 3072,
            heads: 24,
            seq_len: 1024,
            ff_dim: 12_288,
            reported_params_b: 8.3,
            kind: LayerKind::Decoder,
        },
        ZooModel {
            name: "T-NLG",
            year: 2020,
            layers: 78,
            hidden: 4256,
            heads: 28,
            seq_len: 1024,
            ff_dim: 17_024,
            reported_params_b: 17.0,
            kind: LayerKind::Decoder,
        },
        ZooModel {
            name: "GPT-3",
            year: 2020,
            layers: 96,
            hidden: 12_288,
            heads: 96,
            seq_len: 2048,
            ff_dim: 49_152,
            reported_params_b: 175.0,
            kind: LayerKind::Decoder,
        },
        ZooModel {
            name: "MT-NLG",
            year: 2021,
            layers: 105,
            hidden: 20_480,
            heads: 128,
            seq_len: 2048,
            ff_dim: 81_920,
            reported_params_b: 530.0,
            kind: LayerKind::Decoder,
        },
        ZooModel {
            name: "PaLM",
            year: 2022,
            layers: 118,
            hidden: 18_432,
            heads: 48,
            seq_len: 2048,
            ff_dim: 73_728,
            reported_params_b: 540.0,
            kind: LayerKind::Decoder,
        },
    ]
}

/// The 3.9 B-parameter Megatron BERT — the paper's §4.3.2 baseline for TP
/// scaling (the first public Transformer trained with TP = 8).
#[must_use]
pub fn megatron_bert_3_9b() -> ZooModel {
    ZooModel {
        name: "Megatron-BERT-3.9B",
        year: 2019,
        layers: 48,
        hidden: 2560,
        heads: 40,
        seq_len: 512,
        ff_dim: 10_240,
        reported_params_b: 3.9,
        kind: LayerKind::Encoder,
    }
}

/// Futuristic PaLM-like models at `scale` ∈ {1, 2, 3}: hidden sizes 16K,
/// 32K, 64K (the paper's "PALM-1x/2x/3x" points in Figures 10–14).
///
/// # Panics
/// Panics for scales outside 1..=3.
#[must_use]
pub fn palm_future(scale: u8) -> ZooModel {
    // 256 heads across the board so the sharding the paper projects
    // (TP up to ~256-550) is actually expressible.
    let (name, hidden, heads): (&'static str, u64, u64) = match scale {
        1 => ("PaLM-1x", 16_384, 256),
        2 => ("PaLM-2x", 32_768, 256),
        3 => ("PaLM-3x", 65_536, 256),
        _ => panic!("palm_future supports scales 1..=3, got {scale}"),
    };
    ZooModel {
        name,
        year: 2024 + u16::from(scale),
        layers: 128,
        hidden,
        heads,
        seq_len: 4096,
        ff_dim: 4 * hidden,
        reported_params_b: 12.0 * (hidden as f64).powi(2) * 128.0 / 1e9,
        kind: LayerKind::Decoder,
    }
}

/// Every model: Table 2 plus the TP baseline and the futuristic points.
#[must_use]
pub fn all() -> Vec<ZooModel> {
    let mut v = table2();
    v.push(megatron_bert_3_9b());
    v.extend((1..=3).map(palm_future));
    v.sort_by(|a, b| (a.year, a.name).cmp(&(b.year, b.name)));
    v
}

/// Look up a model by (case-insensitive) name.
#[must_use]
pub fn by_name(name: &str) -> Option<ZooModel> {
    all()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_eight_models_in_chronological_order() {
        let t = table2();
        assert_eq!(t.len(), 8);
        for w in t.windows(2) {
            assert!(w[0].year <= w[1].year);
        }
        assert_eq!(t[0].name, "BERT");
        assert_eq!(t[7].name, "PaLM");
    }

    #[test]
    fn every_zoo_entry_builds_valid_hyperparams() {
        for m in all() {
            let hp = m.hyperparams(1);
            assert_eq!(hp.hidden(), m.hidden, "{}", m.name);
            assert_eq!(hp.ff_dim(), m.ff_dim, "{}", m.name);
        }
    }

    #[test]
    fn computed_params_track_reported_sizes() {
        // Within 2x of the reported count for every dense model whose
        // width is captured by Table 2. T5-11B is excluded: its 11B
        // parameters come from wide attention projections and a 64K FF
        // width that the paper's table does not record.
        for m in table2().into_iter().filter(|m| m.name != "T5") {
            let hp = m.hyperparams(1);
            let computed = hp.total_params() as f64 / 1e9;
            let ratio = computed / m.reported_params_b;
            assert!(
                (0.45..=2.2).contains(&ratio),
                "{}: computed {computed:.2}B vs reported {}B",
                m.name,
                m.reported_params_b
            );
        }
    }

    #[test]
    fn memory_proxy_grows_strongly_across_the_zoo() {
        // Fig. 6: H*SL demand grows ~70x from BERT to the PaLM/MT-NLG
        // generation (with small local non-monotonicities, e.g. PaLM's H
        // is slightly below MT-NLG's).
        let t = table2();
        let proxies: Vec<u64> = t.iter().map(ZooModel::memory_proxy).collect();
        let first = proxies[0] as f64;
        let peak = *proxies.iter().max().unwrap() as f64;
        assert!(peak / first > 50.0, "growth {}", peak / first);
        // Each model demands at least as much as the one two slots back.
        assert!(proxies.windows(3).all(|w| w[0] <= w[2]));
    }

    #[test]
    fn futuristic_models_scale_hidden() {
        assert_eq!(palm_future(1).hidden, 16_384);
        assert_eq!(palm_future(2).hidden, 32_768);
        assert_eq!(palm_future(3).hidden, 65_536);
        for s in 1..=3 {
            let m = palm_future(s);
            assert!(m.reported_params_b > 100.0);
            let _ = m.hyperparams(1);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("bert").is_some());
        assert!(by_name("PaLM-3x").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    #[should_panic(expected = "scales 1..=3")]
    fn palm_future_rejects_bad_scale() {
        let _ = palm_future(4);
    }
}
