//! Property-based tests of the workload generator, on the std-only
//! `twocs-testkit` case driver: for random hyperparameters, the
//! generated operator graphs must satisfy the paper's algebraic
//! identities.

use twocs_testkit::{cases, Rng};
use twocs_transformer::backward::{encoder_layer_backward, fc_backward_roi};
use twocs_transformer::layer::{encoder_layer_forward, forward_flops, layer_weight_elements};
use twocs_transformer::memory::{activation_bytes, params_per_device, training_memory};
use twocs_transformer::{Hyperparams, Op, ParallelConfig};

/// Random valid (hyper, parallel) pair: H a multiple of heads, heads a
/// multiple of TP, ff = 4H.
fn config(rng: &mut Rng) -> (Hyperparams, ParallelConfig) {
    let h_mult = rng.u64_in(1..9);
    let sl_mult = rng.u64_in(1..7);
    let tp_log = rng.u32_in(0..6);
    let heads_mult = rng.u64_in(1..17);
    let b = rng.u64_in(1..9);
    let tp = 1u64 << tp_log; // 1..32
    let heads = tp * heads_mult;
    let hidden = heads * 64 * h_mult;
    let hyper = Hyperparams::builder(hidden)
        .heads(heads)
        .layers(4)
        .seq_len(256 * sl_mult)
        .batch(b)
        .build()
        .expect("constructed to be valid");
    let parallel = ParallelConfig::new().tensor(tp).data(4);
    (hyper, parallel)
}

#[test]
fn forward_flops_match_eq4() {
    cases(64, |rng| {
        let (hyper, parallel) = config(rng);
        // Eq. 4 with constants: (24H² + 4·SL·H)·SL·B/TP for ff = 4H.
        let h = hyper.hidden();
        let sl = hyper.seq_len();
        let b = hyper.batch();
        let tp = parallel.tp();
        let expected = (24 * h * h + 4 * sl * h) * sl * b / tp;
        assert_eq!(forward_flops(&hyper, &parallel), expected);
    });
}

#[test]
fn backward_is_exactly_twice_forward() {
    cases(64, |rng| {
        let (hyper, parallel) = config(rng);
        let fwd = forward_flops(&hyper, &parallel);
        let bwd: u64 = encoder_layer_backward(&hyper, &parallel)
            .iter()
            .map(Op::flops)
            .sum();
        assert_eq!(bwd, 2 * fwd);
    });
}

#[test]
fn serialized_ar_count_and_bytes() {
    cases(64, |rng| {
        let (hyper, parallel) = config(rng);
        let fwd = encoder_layer_forward(&hyper, &parallel);
        let bwd = encoder_layer_backward(&hyper, &parallel);
        let ars: Vec<&Op> = fwd
            .iter()
            .chain(bwd.iter())
            .filter(|o| o.is_serialized_comm())
            .collect();
        if parallel.tp() == 1 {
            assert!(ars.is_empty());
        } else {
            // Paper: four serialized all-reduces per layer, each of
            // (precision/8)·H·SL·B bytes (Eq. 5).
            assert_eq!(ars.len(), 4);
            let expect = hyper.precision().bytes() * hyper.hidden() * hyper.tokens();
            for ar in ars {
                assert_eq!(ar.comm_bytes(hyper.precision()), expect);
            }
        }
    });
}

#[test]
fn roi_ratio_is_4_slb() {
    cases(64, |rng| {
        let (hyper, parallel) = config(rng);
        // Eq. 9 with constants: FLOPs / gradient elements = 4·SL·B.
        let (compute, comm) = fc_backward_roi(&hyper, &parallel);
        let flops: u64 = compute.iter().map(Op::flops).sum();
        let elements = comm.comm_bytes(hyper.precision()) / hyper.precision().bytes();
        assert_eq!(flops / elements, 4 * hyper.tokens());
    });
}

#[test]
fn tp_slices_flops_and_weights_evenly() {
    cases(64, |rng| {
        let (hyper, parallel) = config(rng);
        let dense_par = ParallelConfig::new();
        let dense = forward_flops(&hyper, &dense_par);
        let sliced = forward_flops(&hyper, &parallel);
        assert_eq!(sliced, dense / parallel.tp());
        // Dominant weight term slices by TP too (biases/LN replicate).
        let w_dense = layer_weight_elements(&hyper, &dense_par);
        let w_sliced = layer_weight_elements(&hyper, &parallel);
        let ratio = w_dense as f64 / w_sliced as f64;
        assert!(ratio <= parallel.tp() as f64 + 1e-9);
        assert!(ratio > 0.80 * parallel.tp() as f64);
    });
}

#[test]
fn memory_accounting_is_monotone() {
    cases(64, |rng| {
        let (hyper, parallel) = config(rng);
        let m = training_memory(&hyper, &parallel);
        assert!(m.params > 0);
        assert_eq!(m.grads, m.params);
        assert_eq!(m.optimizer, 6 * m.params); // 12 B vs 2 B fp16
                                               // Bigger batch -> more activations, same parameters.
        let bigger = hyper.clone().with_batch(hyper.batch() * 2);
        assert_eq!(
            params_per_device(&bigger, &parallel),
            params_per_device(&hyper, &parallel)
        );
        assert!(
            activation_bytes(&bigger, &parallel) >= 2 * activation_bytes(&hyper, &parallel) - 8
        );
    });
}

#[test]
fn every_op_prices_positively() {
    cases(64, |rng| {
        let (hyper, parallel) = config(rng);
        use twocs_collectives::CollectiveCostModel;
        use twocs_hw::DeviceSpec;
        let dev = DeviceSpec::mi210();
        let cm = CollectiveCostModel::default();
        for op in encoder_layer_forward(&hyper, &parallel)
            .iter()
            .chain(encoder_layer_backward(&hyper, &parallel).iter())
        {
            let t = op.time_on(&dev, hyper.precision(), &cm);
            assert!(t.is_finite() && t > 0.0, "{op}: {t}");
            assert!(t < 60.0, "{op} implausibly slow: {t}s");
        }
    });
}
