//! Property-based tests of the statistics toolkit and scaling laws, on
//! the std-only `twocs-testkit` case driver.

use twocs_opmodel::stats::{geomean_error, mean_abs_pct_error, LinearFit};
use twocs_testkit::cases;

#[test]
fn ols_recovers_exact_linear_models() {
    cases(96, |rng| {
        let intercept = rng.f64_in(-100.0..100.0);
        let slope = rng.f64_in(-10.0..10.0);
        let n = rng.usize_in(3..40);
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..n).map(|i| intercept + slope * i as f64).collect();
        let fit = LinearFit::fit(&rows, &y).expect("well-posed system");
        assert!((fit.coefficients()[0] - intercept).abs() < 1e-6);
        assert!((fit.coefficients()[1] - slope).abs() < 1e-7);
        assert!(fit.r_squared() > 1.0 - 1e-9);
    });
}

#[test]
fn ols_recovers_quadratics() {
    cases(96, |rng| {
        let a = rng.f64_in(0.01..5.0);
        let b = rng.f64_in(-5.0..5.0);
        let c = rng.f64_in(-50.0..50.0);
        let rows: Vec<Vec<f64>> = (1..20)
            .map(|i| {
                let x = f64::from(i);
                vec![1.0, x, x * x]
            })
            .collect();
        let y: Vec<f64> = (1..20)
            .map(|i| {
                let x = f64::from(i);
                c + b * x + a * x * x
            })
            .collect();
        let fit = LinearFit::fit(&rows, &y).expect("well-posed system");
        assert!(
            (fit.coefficients()[2] - a).abs() < 1e-5,
            "quadratic coefficient {} vs {a}",
            fit.coefficients()[2]
        );
    });
}

#[test]
fn prediction_is_linear_in_features() {
    cases(96, |rng| {
        let beta: Vec<f64> = {
            let k = rng.usize_in(2..4);
            rng.vec_of(k, |r| r.f64_in(-5.0..5.0))
        };
        let x: Vec<f64> = {
            let k = rng.usize_in(2..4);
            rng.vec_of(k, |r| r.f64_in(-10.0..10.0))
        };
        // Build exact data from beta, fit, and verify predict() is the dot
        // product for an arbitrary feature vector of the same arity.
        let k = beta.len().min(x.len());
        let beta = &beta[..k];
        let x = &x[..k];
        let rows: Vec<Vec<f64>> = (0..(k * 4))
            .map(|i| {
                (0..k)
                    .map(|j| ((i * 7 + j * 13) % 11) as f64 + 0.5 * j as f64)
                    .collect()
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(beta).map(|(v, b)| v * b).sum())
            .collect();
        if let Some(fit) = LinearFit::fit(&rows, &y) {
            let expect: f64 = x.iter().zip(beta).map(|(v, b)| v * b).sum();
            assert!((fit.predict(x) - expect).abs() < 1e-5 * (1.0 + expect.abs()));
        }
    });
}

#[test]
fn error_metrics_are_zero_iff_exact() {
    cases(96, |rng| {
        let n = rng.usize_in(1..20);
        let values: Vec<f64> = rng.vec_of(n, |r| r.f64_in(0.1..1e6));
        assert!(mean_abs_pct_error(&values, &values) < 1e-12);
        assert!(geomean_error(&values, &values) < 1e-12);
        // Scaling everything by 2x gives exactly 100% MAPE and geomean.
        let doubled: Vec<f64> = values.iter().map(|v| 2.0 * v).collect();
        assert!((mean_abs_pct_error(&doubled, &values) - 1.0).abs() < 1e-9);
        assert!((geomean_error(&doubled, &values) - 1.0).abs() < 1e-9);
    });
}

#[test]
fn geomean_error_symmetry() {
    cases(96, |rng| {
        let n = rng.usize_in(1..20);
        let pred: Vec<f64> = rng.vec_of(n, |r| r.f64_in(0.1..1e4));
        let scale = rng.f64_in(0.1..10.0);
        let actual: Vec<f64> = pred.iter().map(|v| v * scale).collect();
        let forward = geomean_error(&pred, &actual);
        let backward = geomean_error(&actual, &pred);
        assert!((forward - backward).abs() < 1e-9);
    });
}

mod scaling_laws {
    use twocs_opmodel::ScalingExponents;
    use twocs_testkit::cases;
    use twocs_transformer::Hyperparams;

    #[test]
    fn scale_factor_is_multiplicative() {
        cases(64, |rng| {
            let h_mult = rng.u64_in(1..8);
            let sl_mult = rng.u64_in(1..8);
            // Law(base -> mid) * Law(mid -> target) == Law(base -> target).
            let mk = |h: u64, sl: u64| {
                Hyperparams::builder(h)
                    .heads(16)
                    .seq_len(sl)
                    .batch(1)
                    .build()
                    .unwrap()
            };
            let base = mk(1024, 512);
            let mid = mk(1024 * h_mult, 512);
            let target = mk(1024 * h_mult, 512 * sl_mult);
            for name in ["fc1_gemm", "attn_score_gemm", "ln1", "gelu"] {
                let law = ScalingExponents::for_op(name).unwrap();
                let two_hop =
                    law.scale_factor(&base, 1, &mid, 1) * law.scale_factor(&mid, 1, &target, 1);
                let direct = law.scale_factor(&base, 1, &target, 1);
                assert!(((two_hop - direct) / direct).abs() < 1e-9, "{name}");
            }
        });
    }
}
