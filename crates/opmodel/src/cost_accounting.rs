//! Profiling-cost accounting (the paper's §4.3.8 "Profiling Speedups").
//!
//! The paper's strategy avoids executing ~198 Transformer configurations,
//! cutting profiling cost by three orders of magnitude (2100×), and avoids
//! forward passes for the overlap analysis (another 1.5×). This module
//! reproduces the accounting over the paper's Table 3 sweep space using
//! the substrate's iteration times as the "cost to execute".

use crate::profile::Profiler;
use twocs_hw::DeviceSpec;
use twocs_transformer::{Hyperparams, ParallelConfig};

/// Layer count used for future-model cost estimates (GPT-3-class depth).
const SWEEP_LAYERS: u64 = 96;

/// The paper's Table 3 sweep space, filtered to shardable configurations:
/// `H ∈ {1K..64K} × SL ∈ {1K..8K} × B ∈ {1,4} × TP ∈ {4..256}` with
/// `TP ≤ heads` and `TP | H`.
#[must_use]
pub fn table3_configs() -> Vec<(Hyperparams, ParallelConfig)> {
    let hs = [1024u64, 2048, 4096, 8192, 16_384, 32_768, 65_536];
    let sls = [1024u64, 2048, 4096, 8192];
    let bs = [1u64, 4];
    let tps = [4u64, 8, 16, 32, 64, 128, 256];
    let mut out = Vec::new();
    for &h in &hs {
        // Power-of-two head count so large TP degrees stay valid.
        let heads = (h / 64).clamp(16, 256);
        for &sl in &sls {
            for &b in &bs {
                let Ok(hyper) = Hyperparams::builder(h)
                    .heads(heads)
                    .layers(SWEEP_LAYERS)
                    .seq_len(sl)
                    .batch(b)
                    .build()
                else {
                    continue;
                };
                for &tp in &tps {
                    let parallel = ParallelConfig::new().tensor(tp);
                    if parallel.validate(&hyper).is_err() {
                        continue;
                    }
                    // Exclude unrealistic points: huge models at tiny TP
                    // (cannot fit), tiny models at huge TP (pointless),
                    // mirroring the paper's pruning.
                    if h >= 16_384 && tp < 16 {
                        continue;
                    }
                    if h <= 2048 && tp > 64 {
                        continue;
                    }
                    out.push((hyper.clone(), parallel));
                }
            }
        }
    }
    out
}

/// Result of the profiling-cost comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilingCostReport {
    /// Number of configurations the strategy avoids executing.
    pub configs: usize,
    /// Virtual cost (seconds of device time) of exhaustively executing
    /// every configuration.
    pub exhaustive_seconds: f64,
    /// Cost of the paper's strategy: one baseline iteration plus the
    /// all-reduce size sweep.
    pub strategy_seconds: f64,
    /// Cost of a full iteration vs. backward-only ROI for the overlap
    /// analysis.
    pub full_iteration_seconds: f64,
    /// Backward-only ROI cost.
    pub roi_seconds: f64,
}

impl ProfilingCostReport {
    /// End-to-end profiling speedup of the strategy (paper: ~2100×).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.strategy_seconds <= 0.0 {
            return 0.0;
        }
        self.exhaustive_seconds / self.strategy_seconds
    }

    /// Speedup of ROI extraction over full iterations for the overlap
    /// analysis (paper: ~1.5×).
    #[must_use]
    pub fn roi_speedup(&self) -> f64 {
        if self.roi_seconds <= 0.0 {
            return 0.0;
        }
        self.full_iteration_seconds / self.roi_seconds
    }
}

/// Account profiling costs over the Table 3 space on `device`.
///
/// Exhaustive cost sums each configuration's per-iteration time (computed
/// analytically from per-layer profiles — running the simulator for every
/// config is exactly what we are costing, not something we need to do).
#[must_use]
pub fn account(device: &DeviceSpec) -> ProfilingCostReport {
    let profiler = Profiler::new(device.clone());
    let configs = table3_configs();

    let mut exhaustive = 0.0;
    for (hyper, parallel) in &configs {
        let layer = profiler.profile_layer(hyper, parallel);
        let per_layer = layer.compute_time() + layer.serialized_comm_time();
        exhaustive += per_layer * (hyper.layers() / parallel.pp()) as f64;
    }

    // Strategy: one BERT-baseline iteration on one device + the AR sweep.
    let baseline = Hyperparams::builder(1024)
        .heads(16)
        .layers(24)
        .seq_len(512)
        .batch(4)
        .build()
        .expect("valid baseline");
    let single = ParallelConfig::new();
    let base_layer = profiler.profile_layer(&baseline, &single);
    let baseline_iter = base_layer.compute_time() * baseline.layers() as f64;
    let ar_sweep: f64 = crate::model::ArSizeModel::default_sizes()
        .iter()
        .map(|&s| profiler.comm_model().allreduce_time(s, 4, device.network()))
        .sum();
    let strategy = baseline_iter + ar_sweep;

    // ROI comparison on a representative mid-size configuration: full
    // forward+backward iteration vs. backward-only ROI.
    let roi_hyper = Hyperparams::builder(4096)
        .heads(32)
        .layers(24)
        .seq_len(2048)
        .batch(1)
        .build()
        .expect("valid ROI config");
    let roi_par = ParallelConfig::new().tensor(4).data(4);
    let roi_layer = profiler.profile_layer(&roi_hyper, &roi_par);
    let fwd: f64 = roi_layer.forward.iter().map(|r| r.time).sum();
    let bwd: f64 = roi_layer.backward.iter().map(|r| r.time).sum();
    let layers = roi_hyper.layers() as f64;

    ProfilingCostReport {
        configs: configs.len(),
        exhaustive_seconds: exhaustive,
        strategy_seconds: strategy,
        full_iteration_seconds: (fwd + bwd) * layers,
        roi_seconds: bwd * layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_space_has_a_couple_hundred_configs() {
        // Paper: "avoids executing ~198 different Transformer models".
        let n = table3_configs().len();
        assert!((150..=400).contains(&n), "got {n} configs");
    }

    #[test]
    fn all_configs_are_valid() {
        for (hyper, parallel) in table3_configs() {
            parallel.validate(&hyper).unwrap();
        }
    }

    #[test]
    fn strategy_speedup_is_at_least_three_orders_of_magnitude() {
        // Paper: "over three orders of magnitude (2100x)". Our sweep uses
        // deeper (96-layer) future models than the paper's estimate, so we
        // land higher (~3e4); the claim preserved is >= 3 orders.
        let report = account(&DeviceSpec::mi210());
        let s = report.speedup();
        assert!(
            (1_000.0..=100_000.0).contains(&s),
            "speedup {s} outside >=3-orders-of-magnitude band"
        );
    }

    #[test]
    fn roi_speedup_is_about_1_5x() {
        // Backward is ~2/3 of an iteration, so skipping forward ≈ 1.5x.
        let report = account(&DeviceSpec::mi210());
        let s = report.roi_speedup();
        assert!((1.3..=1.7).contains(&s), "ROI speedup {s}");
    }

    #[test]
    fn exhaustive_cost_dwarfs_strategy_cost() {
        let report = account(&DeviceSpec::mi210());
        assert!(report.exhaustive_seconds > 100.0 * report.strategy_seconds);
        assert!(report.strategy_seconds > 0.0);
    }
}
