//! Operator-model accuracy validation (the paper's §4.3.8 / Figure 15).
//!
//! Each sweep compares the *projected* runtime of an operator (scaled from
//! the smallest configuration with its analytic law, or interpolated from
//! the coarse measured all-reduce grid) against the *measured* runtime on
//! the hardware substrate, and reports geometric-mean error. The residual
//! error has the same source the paper names: efficiency improves with
//! operation size, so pure linear/quadratic scaling from a small baseline
//! over- or under-shoots.

use crate::model::ArSizeModel;
use crate::profile::Profiler;
use crate::projection::ProjectionModel;
use crate::stats::geomean_error;
use twocs_hw::DeviceSpec;
use twocs_transformer::layer::encoder_layer_forward;
use twocs_transformer::{Hyperparams, ParallelConfig};

/// One (x, projected, measured) sample of a validation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Swept value (`SL`, `H`, or bytes).
    pub x: f64,
    /// Model-projected runtime, seconds.
    pub projected: f64,
    /// Ground-truth runtime, seconds.
    pub measured: f64,
}

/// A complete validation sweep for one operator family.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepValidation {
    /// Human-readable label (e.g. `"fc1_gemm vs SL"`).
    pub label: String,
    /// The samples, ascending in `x`.
    pub points: Vec<SweepPoint>,
}

impl SweepValidation {
    /// Geometric-mean relative error across the sweep.
    #[must_use]
    pub fn geomean_error(&self) -> f64 {
        let projected: Vec<f64> = self.points.iter().map(|p| p.projected).collect();
        let measured: Vec<f64> = self.points.iter().map(|p| p.measured).collect();
        geomean_error(&projected, &measured)
    }

    /// Worst-case relative error across the sweep.
    #[must_use]
    pub fn max_error(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.measured > 0.0)
            .map(|p| ((p.projected - p.measured) / p.measured).abs())
            .fold(0.0, f64::max)
    }
}

fn measured_op_time(device: &DeviceSpec, hyper: &Hyperparams, op_name: &str) -> Option<f64> {
    let profiler = Profiler::new(device.clone());
    encoder_layer_forward(hyper, &ParallelConfig::new())
        .iter()
        .find(|o| o.name() == op_name)
        .map(|o| profiler.profile_op(o, hyper).time)
}

fn sweep(
    device: &DeviceSpec,
    base: &Hyperparams,
    op_name: &str,
    label: &str,
    configs: impl IntoIterator<Item = (f64, Hyperparams)>,
) -> SweepValidation {
    let model = ProjectionModel::from_baseline(base, device);
    let points = configs
        .into_iter()
        .filter_map(|(x, hyper)| {
            let projected = model.project_op_time(op_name, &hyper, 1)?;
            let measured = measured_op_time(device, &hyper, op_name)?;
            Some(SweepPoint {
                x,
                projected,
                measured,
            })
        })
        .collect();
    SweepValidation {
        label: label.to_owned(),
        points,
    }
}

/// Figure 15(a), left: GEMM runtime vs. `SL` (projected linearly from the
/// smallest point).
#[must_use]
pub fn gemm_vs_sl(device: &DeviceSpec, sls: &[u64]) -> SweepValidation {
    let base = Hyperparams::builder(4096)
        .heads(32)
        .seq_len(sls.first().copied().unwrap_or(512))
        .batch(1)
        .build()
        .expect("valid baseline");
    let configs = sls
        .iter()
        .map(|&sl| (sl as f64, base.clone().with_seq_len(sl)))
        .collect::<Vec<_>>();
    sweep(device, &base, "fc1_gemm", "fc1_gemm runtime vs SL", configs)
}

/// Figure 15(a), right: GEMM runtime vs. `H` (projected quadratically from
/// the smallest point).
#[must_use]
pub fn gemm_vs_h(device: &DeviceSpec, hs: &[u64]) -> SweepValidation {
    let h0 = hs.first().copied().unwrap_or(1024);
    let mk = |h: u64| {
        Hyperparams::builder(h)
            .heads((h / 64).max(1))
            .seq_len(2048)
            .batch(1)
            .build()
            .expect("valid sweep point")
    };
    let base = mk(h0);
    let configs = hs.iter().map(|&h| (h as f64, mk(h))).collect::<Vec<_>>();
    sweep(device, &base, "fc1_gemm", "fc1_gemm runtime vs H", configs)
}

/// Figure 15(b): LayerNorm runtime vs. `SL` and vs. `H` (both linear).
/// Batch 4 keeps kernel time well above the fixed launch cost, as in the
/// paper's BERT profiling.
#[must_use]
pub fn layernorm_vs_sl(device: &DeviceSpec, sls: &[u64]) -> SweepValidation {
    let base = Hyperparams::builder(4096)
        .heads(32)
        .seq_len(sls.first().copied().unwrap_or(512))
        .batch(4)
        .build()
        .expect("valid baseline");
    let configs = sls
        .iter()
        .map(|&sl| (sl as f64, base.clone().with_seq_len(sl)))
        .collect::<Vec<_>>();
    sweep(device, &base, "ln1", "layernorm runtime vs SL", configs)
}

/// Figure 15(b), right: LayerNorm runtime vs. `H`.
#[must_use]
pub fn layernorm_vs_h(device: &DeviceSpec, hs: &[u64]) -> SweepValidation {
    let h0 = hs.first().copied().unwrap_or(1024);
    let mk = |h: u64| {
        Hyperparams::builder(h)
            .heads((h / 64).max(1))
            .seq_len(2048)
            .batch(4)
            .build()
            .expect("valid sweep point")
    };
    let base = mk(h0);
    let configs = hs.iter().map(|&h| (h as f64, mk(h))).collect::<Vec<_>>();
    sweep(device, &base, "ln1", "layernorm runtime vs H", configs)
}

/// Figure 15(c): all-reduce runtime vs. payload size — the model is fitted
/// on a coarse (×4) grid and validated at intermediate sizes.
#[must_use]
pub fn allreduce_vs_size(device: &DeviceSpec) -> SweepValidation {
    let profiler = Profiler::new(device.clone());
    let coarse: Vec<u64> = (0..8).map(|i| (256 * 1024u64) << (2 * i)).collect();
    let model = ArSizeModel::profile(device.network(), profiler.comm_model(), 4, &coarse);
    // Validate halfway (×2) between fitted points.
    let points = (0..7)
        .map(|i| {
            let bytes = (512 * 1024u64) << (2 * i);
            let projected = model.predict(bytes);
            let measured = profiler
                .comm_model()
                .allreduce_time(bytes, 4, device.network());
            SweepPoint {
                x: bytes as f64,
                projected,
                measured,
            }
        })
        .collect();
    SweepValidation {
        label: "all-reduce runtime vs size".to_owned(),
        points,
    }
}

/// The default Figure 15 validation suite on one device.
#[must_use]
pub fn figure15_suite(device: &DeviceSpec) -> Vec<SweepValidation> {
    let sls: Vec<u64> = vec![512, 1024, 2048, 4096, 8192];
    let hs: Vec<u64> = vec![1024, 2048, 4096, 8192];
    vec![
        gemm_vs_sl(device, &sls),
        gemm_vs_h(device, &hs),
        layernorm_vs_sl(device, &sls),
        layernorm_vs_h(device, &hs),
        allreduce_vs_size(device),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_sl_sweep_is_accurate() {
        // Paper: GEMM model error ~15%.
        let v = gemm_vs_sl(&DeviceSpec::mi210(), &[512, 1024, 2048, 4096, 8192]);
        assert_eq!(v.points.len(), 5);
        assert!(v.geomean_error() < 0.15, "geomean {}", v.geomean_error());
    }

    #[test]
    fn gemm_h_sweep_is_reasonably_accurate() {
        let v = gemm_vs_h(&DeviceSpec::mi210(), &[1024, 2048, 4096, 8192]);
        assert!(v.geomean_error() < 0.20, "geomean {}", v.geomean_error());
    }

    #[test]
    fn layernorm_sweeps_are_very_accurate() {
        // Paper: LayerNorm geomean error ~7%.
        let sl = layernorm_vs_sl(&DeviceSpec::mi210(), &[512, 1024, 2048, 4096, 8192]);
        let h = layernorm_vs_h(&DeviceSpec::mi210(), &[1024, 2048, 4096, 8192]);
        assert!(sl.geomean_error() < 0.10, "vs SL {}", sl.geomean_error());
        assert!(h.geomean_error() < 0.10, "vs H {}", h.geomean_error());
    }

    #[test]
    fn allreduce_sweep_is_accurate() {
        // Paper: all-reduce geomean error ~11%.
        let v = allreduce_vs_size(&DeviceSpec::mi210());
        assert!(v.geomean_error() < 0.12, "geomean {}", v.geomean_error());
        assert!(!v.points.is_empty());
    }

    #[test]
    fn suite_runs_everywhere() {
        for dev in [DeviceSpec::mi210(), DeviceSpec::a100()] {
            let suite = figure15_suite(&dev);
            assert_eq!(suite.len(), 5);
            for v in &suite {
                assert!(!v.points.is_empty(), "{}", v.label);
                assert!(v.max_error() < 1.0, "{}: {}", v.label, v.max_error());
            }
        }
    }

    #[test]
    fn projected_and_measured_grow_with_x() {
        let v = gemm_vs_sl(&DeviceSpec::mi210(), &[512, 1024, 2048, 4096]);
        for w in v.points.windows(2) {
            assert!(w[1].projected > w[0].projected);
            assert!(w[1].measured > w[0].measured);
        }
    }
}
