//! The profiling harness — our rocProf stand-in.
//!
//! [`Profiler`] "executes" operators on the hardware substrate and records
//! per-kernel timings ([`OperatorRecord`]). It can profile a single op, a
//! whole layer (forward + backward), the paper's DP slack ROI (§4.2.2,
//! step 2a), or a full training iteration through the discrete-event
//! simulator.

use std::sync::LazyLock;
use twocs_collectives::CollectiveCostModel;
use twocs_hw::cache::{CacheStats, ChunkScope, MemoCache};
use twocs_hw::DeviceSpec;
use twocs_sim::{Engine, OpClass, SimError};
use twocs_transformer::backward::{encoder_layer_backward, fc_backward_roi};
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::layer::encoder_layer_forward;
use twocs_transformer::{Hyperparams, Op, ParallelConfig};

/// Cache key for [`Profiler::profile_slack_roi`]: every model dimension
/// the ROI depends on, the parallelism degrees, and the device + comm
/// model (by fingerprint / constant bits). Nested tuples keep the key
/// exact — no lossy hashing, so distinct configurations never collide.
type SlackRoiKey = (
    (u64, u64, u64, u64, u64, u64, u8), // hidden, heads, seq_len, batch, ff, vocab, precision
    (u64, u64, u64, u64),               // tp, dp, pp, ep
    (u64, u64, u64),                    // device fingerprint, comm α bits, comm ramp bits
);

/// Global memo table for [`Profiler::profile_slack_roi`]: the hardware
/// evolution sweeps (§5) re-profile the same ROI for every projected
/// device that shares the baseline's compute side.
static SLACK_ROI: LazyLock<MemoCache<SlackRoiKey, (f64, f64)>> =
    LazyLock::new(|| MemoCache::named("slack_roi"));

/// Counters of the global slack-ROI profile cache.
#[must_use]
pub fn slack_roi_cache_stats() -> CacheStats {
    SLACK_ROI.stats()
}

/// Empty the global slack-ROI profile cache and zero its counters.
pub fn clear_slack_roi_cache() {
    SLACK_ROI.clear();
}

/// RAII guard for one chunk-scoped slack-ROI session (see
/// [`Profiler::begin_slack_roi_chunk`]). While alive, the chunk's
/// prefetched queries answer from the calling thread's lock-free L1;
/// dropping it ends the chunk.
#[must_use = "the chunk ends when the guard is dropped"]
#[derive(Debug)]
pub struct SlackRoiChunk(ChunkScope<'static, SlackRoiKey, (f64, f64)>);

impl SlackRoiChunk {
    /// Queries the prefetch copied from the shared cache shards into the
    /// calling thread's L1 table.
    #[must_use]
    pub fn prefetched(&self) -> usize {
        self.0.prefetched()
    }
}

/// One profiled operator execution.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorRecord {
    /// Operator label (e.g. `"fc1_gemm"`).
    pub name: &'static str,
    /// Operator class.
    pub class: OpClass,
    /// Measured execution time, seconds.
    pub time: f64,
    /// Algorithmic FLOPs.
    pub flops: u64,
    /// Communicated bytes (zero for compute).
    pub comm_bytes: u64,
    /// Whether the op is critical-path communication.
    pub serialized_comm: bool,
}

/// A profiled layer: forward and backward operator records.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    /// Forward-pass records, in execution order.
    pub forward: Vec<OperatorRecord>,
    /// Backward-pass records, in execution order.
    pub backward: Vec<OperatorRecord>,
}

impl LayerProfile {
    /// All records, forward then backward.
    pub fn iter(&self) -> impl Iterator<Item = &OperatorRecord> {
        self.forward.iter().chain(self.backward.iter())
    }

    /// Total compute time (GEMMs + mem-ops), seconds.
    #[must_use]
    pub fn compute_time(&self) -> f64 {
        self.iter()
            .filter(|r| !r.class.is_comm())
            .map(|r| r.time)
            .sum()
    }

    /// Total serialized communication time, seconds.
    #[must_use]
    pub fn serialized_comm_time(&self) -> f64 {
        self.iter()
            .filter(|r| r.serialized_comm)
            .map(|r| r.time)
            .sum()
    }
}

/// Profiles operators against a device model.
#[derive(Debug, Clone)]
pub struct Profiler {
    device: DeviceSpec,
    comm_model: CollectiveCostModel,
}

impl Profiler {
    /// Create a profiler for `device` with the default collective model.
    #[must_use]
    pub fn new(device: DeviceSpec) -> Self {
        Self {
            device,
            comm_model: CollectiveCostModel::default(),
        }
    }

    /// Override the collective cost model.
    #[must_use]
    pub fn with_comm_model(mut self, comm_model: CollectiveCostModel) -> Self {
        self.comm_model = comm_model;
        self
    }

    /// The profiled device.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The collective cost model in use.
    #[must_use]
    pub fn comm_model(&self) -> &CollectiveCostModel {
        &self.comm_model
    }

    /// Profile one operator at the model's precision.
    #[must_use]
    pub fn profile_op(&self, op: &Op, hyper: &Hyperparams) -> OperatorRecord {
        OperatorRecord {
            name: op.name(),
            class: op.class(),
            time: op.time_on(&self.device, hyper.precision(), &self.comm_model),
            flops: op.flops(),
            comm_bytes: op.comm_bytes(hyper.precision()),
            serialized_comm: op.is_serialized_comm(),
        }
    }

    /// Profile one layer's forward and backward passes.
    #[must_use]
    pub fn profile_layer(&self, hyper: &Hyperparams, parallel: &ParallelConfig) -> LayerProfile {
        let forward = encoder_layer_forward(hyper, parallel)
            .iter()
            .map(|op| self.profile_op(op, hyper))
            .collect();
        let backward = encoder_layer_backward(hyper, parallel)
            .iter()
            .map(|op| self.profile_op(op, hyper))
            .collect();
        LayerProfile { forward, backward }
    }

    /// The slack-ROI cache key of one `(hyper, parallel)` query on this
    /// profiler's device and comm model.
    fn slack_roi_key(&self, hyper: &Hyperparams, parallel: &ParallelConfig) -> SlackRoiKey {
        (
            (
                hyper.hidden(),
                hyper.heads(),
                hyper.seq_len(),
                hyper.batch(),
                hyper.ff_dim(),
                hyper.vocab(),
                hyper.precision() as u8,
            ),
            (parallel.tp(), parallel.dp(), parallel.pp(), parallel.ep()),
            (
                self.device.fingerprint(),
                self.comm_model.step_latency().to_bits(),
                self.comm_model.chunk_ramp_bytes().to_bits(),
            ),
        )
    }

    /// Begin a chunk-scoped slack-ROI session: pre-resolve every query's
    /// cache key against the shared cache shards at most once for the
    /// whole chunk (one read-lock per shard, see
    /// [`MemoCache::begin_chunk`](twocs_hw::cache::MemoCache::begin_chunk)),
    /// so the [`Self::profile_slack_roi`] calls that follow are
    /// lock-free thread-local hits. Queries whose ROI has never been
    /// profiled are left to the normal path — computed once, in-flight
    /// deduplicated.
    ///
    /// Batch evaluators (the factored sweep planner) call this once per
    /// lease-sized chunk before walking the chunk's points.
    pub fn begin_slack_roi_chunk(
        &self,
        queries: impl IntoIterator<Item = (Hyperparams, ParallelConfig)>,
    ) -> SlackRoiChunk {
        let keys = queries
            .into_iter()
            .map(|(hyper, parallel)| self.slack_roi_key(&hyper, &parallel));
        SlackRoiChunk(LazyLock::force(&SLACK_ROI).begin_chunk(keys))
    }

    /// Profile the paper's DP slack ROI (§4.2.2 step 2a): the FC backward
    /// GEMM pair and the overlappable gradient all-reduce. Returns
    /// `(compute_time, comm_time)` in seconds.
    /// Memoized globally (see [`slack_roi_cache_stats`]): every projected
    /// future device re-profiles this ROI, and most of them share the
    /// baseline's compute side.
    #[must_use]
    pub fn profile_slack_roi(&self, hyper: &Hyperparams, parallel: &ParallelConfig) -> (f64, f64) {
        let key = self.slack_roi_key(hyper, parallel);
        SLACK_ROI.get_or_insert_with(key, || {
            let (compute, comm) = fc_backward_roi(hyper, parallel);
            let t_compute: f64 = compute
                .iter()
                .map(|op| self.profile_op(op, hyper).time)
                .sum();
            let t_comm = self.profile_op(&comm, hyper).time;
            (t_compute, t_comm)
        })
    }

    /// "Run" a full training iteration through the discrete-event
    /// simulator and return its wall-clock time in seconds — the
    /// exhaustive-profiling cost of one configuration.
    ///
    /// # Errors
    /// Propagates simulator graph-validation errors.
    pub fn measure_iteration(
        &self,
        hyper: &Hyperparams,
        parallel: &ParallelConfig,
    ) -> Result<f64, SimError> {
        let graph = IterationBuilder::new(hyper, parallel, &self.device)
            .comm_model(self.comm_model)
            .build_training();
        Ok(Engine::new().run(&graph)?.makespan().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiler() -> Profiler {
        Profiler::new(DeviceSpec::mi210())
    }

    fn hp() -> Hyperparams {
        Hyperparams::builder(1024)
            .heads(16)
            .seq_len(512)
            .batch(4)
            .build()
            .unwrap()
    }

    #[test]
    fn layer_profile_covers_all_ops() {
        let par = ParallelConfig::new().tensor(8);
        let p = profiler().profile_layer(&hp(), &par);
        assert_eq!(p.forward.len(), encoder_layer_forward(&hp(), &par).len());
        assert!(p.compute_time() > 0.0);
        assert!(p.serialized_comm_time() > 0.0);
        assert!(p.iter().all(|r| r.time > 0.0));
    }

    #[test]
    fn slack_roi_times_are_positive_and_comm_smaller_at_large_slb() {
        let par = ParallelConfig::new().tensor(8).data(4);
        let small = hp(); // SL*B = 2048
        let large = hp().with_seq_len(4096).with_batch(8); // SL*B = 32768
        let (c_small, r_small) = profiler().profile_slack_roi(&small, &par);
        let (c_large, r_large) = profiler().profile_slack_roi(&large, &par);
        // Comm is constant (weight gradients), compute grows with SL*B.
        assert!((r_small - r_large).abs() / r_small < 1e-9);
        assert!(c_large > 10.0 * c_small);
    }

    #[test]
    fn measured_iteration_close_to_serial_sum_for_tp_only() {
        // With TP only, everything is serialized, so the simulated
        // makespan should be close to the summed layer profile.
        let par = ParallelConfig::new().tensor(8);
        let hyper = hp();
        let p = profiler().profile_layer(&hyper, &par);
        let serial_per_layer = p.compute_time() + p.serialized_comm_time();
        let measured = profiler().measure_iteration(&hyper, &par).unwrap();
        let expected = serial_per_layer * hyper.layers() as f64;
        let ratio = measured / expected;
        assert!((0.95..=1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn record_fields_are_consistent() {
        let par = ParallelConfig::new().tensor(4);
        let p = profiler().profile_layer(&hp(), &par);
        for r in p.iter() {
            if r.class.is_comm() {
                assert!(r.comm_bytes > 0, "{}", r.name);
                assert_eq!(r.flops, 0, "{}", r.name);
            } else {
                assert_eq!(r.comm_bytes, 0, "{}", r.name);
            }
        }
    }
}
