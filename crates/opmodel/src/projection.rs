//! Projecting full-iteration breakdowns from a single baseline profile.
//!
//! [`ProjectionModel::from_baseline`] profiles one (BERT-like) model on a
//! single device — the paper's step ② — and keeps (a) every operator's
//! baseline runtime and (b) a measured all-reduce size curve from the
//! node. [`ProjectionModel::project`] then prices *any* target
//! configuration by scaling each operator with its analytic law and
//! pricing collectives off the measured curve, without ever "running" the
//! target — the paper's route to studying hundreds of future models.

use crate::model::{ArSizeModel, ScalingExponents};
use crate::profile::{OperatorRecord, Profiler};
use twocs_hw::DeviceSpec;
use twocs_transformer::{Hyperparams, ParallelConfig};

/// One baseline operator, pre-resolved for the projection hot loop:
/// which scaling law governs it (an index into the model's distinct-law
/// table), its baseline runtime, and whether it marks the start of the
/// backward pass.
#[derive(Debug, Clone, Copy)]
struct ResolvedOp {
    /// `(law index, baseline time)`, or `None` for communication ops and
    /// ops without a scaling law (they contribute no projected compute).
    projected: Option<(usize, f64)>,
    /// True if this op's name carries a backward-pass marker.
    backward_marker: bool,
}

/// A single-baseline projection model.
#[derive(Debug, Clone)]
pub struct ProjectionModel {
    baseline: Hyperparams,
    baseline_ops: Vec<OperatorRecord>,
    ar_model: ArSizeModel,
    /// Distinct scaling laws appearing in `baseline_ops`, in first-seen
    /// order. There are only a handful (attention, GEMM, elementwise,
    /// LayerNorm), so the hot loop prices each law once per projection
    /// instead of once per operator.
    laws: Vec<ScalingExponents>,
    /// `baseline_ops` with name-based law lookup and backward detection
    /// hoisted out of the per-projection loop.
    resolved: Vec<ResolvedOp>,
}

impl ProjectionModel {
    /// Profile `baseline` (unsliced, single device — the paper profiles
    /// BERT on one GPU) on `device` and fit the all-reduce curve on the
    /// device's node network.
    #[must_use]
    pub fn from_baseline(baseline: &Hyperparams, device: &DeviceSpec) -> Self {
        let profiler = Profiler::new(device.clone());
        let single = ParallelConfig::new();
        let profile = profiler.profile_layer(baseline, &single);
        let baseline_ops: Vec<OperatorRecord> = profile.iter().cloned().collect();
        let ar_model = ArSizeModel::profile(
            device.network(),
            profiler.comm_model(),
            4, // the paper's 4-GPU node
            &ArSizeModel::default_sizes(),
        );
        let mut laws: Vec<ScalingExponents> = Vec::new();
        let resolved = baseline_ops
            .iter()
            .map(|record| {
                let projected = ScalingExponents::for_op(record.name).and_then(|law| {
                    // Mirror `project_op_time` exactly: the baseline time
                    // is the *first* record with this name.
                    let base = baseline_ops.iter().find(|r| r.name == record.name)?;
                    let idx = laws.iter().position(|l| *l == law).unwrap_or_else(|| {
                        laws.push(law);
                        laws.len() - 1
                    });
                    Some((idx, base.time))
                });
                ResolvedOp {
                    projected,
                    backward_marker: is_backward_marker(record.name),
                }
            })
            .collect();
        Self {
            baseline: baseline.clone(),
            baseline_ops,
            ar_model,
            laws,
            resolved,
        }
    }

    /// The baseline hyperparameters.
    #[must_use]
    pub fn baseline(&self) -> &Hyperparams {
        &self.baseline
    }

    /// The fitted all-reduce size curve.
    #[must_use]
    pub fn ar_model(&self) -> &ArSizeModel {
        &self.ar_model
    }

    /// Project the runtime of one named operator at a target
    /// configuration; `None` for unknown names or communication ops.
    #[must_use]
    pub fn project_op_time(&self, name: &str, target: &Hyperparams, target_tp: u64) -> Option<f64> {
        let law = ScalingExponents::for_op(name)?;
        let base = self.baseline_ops.iter().find(|r| r.name == name)?;
        Some(base.time * law.scale_factor(&self.baseline, 1, target, target_tp))
    }

    /// Project total and backward-only compute per layer at a target
    /// configuration — the operator-scaling loop shared by [`project`]
    /// and the factored sweep planner, so both paths produce bit-equal
    /// floats. Each distinct scaling law is priced once and applied to
    /// every operator it governs, in baseline order.
    ///
    /// [`project`]: ProjectionModel::project
    #[must_use]
    pub fn projected_compute(&self, target: &Hyperparams, target_tp: u64) -> (f64, f64) {
        let factors: Vec<f64> = self
            .laws
            .iter()
            .map(|law| law.scale_factor(&self.baseline, 1, target, target_tp))
            .collect();
        let mut compute = 0.0;
        let mut backward_compute = 0.0;
        let mut seen_backward = false;
        for op in &self.resolved {
            if op.backward_marker {
                seen_backward = true;
            }
            if let Some((law, time)) = op.projected {
                let t = time * factors[law];
                compute += t;
                if seen_backward {
                    backward_compute += t;
                }
            }
        }
        (compute, backward_compute)
    }

    /// Time of the four serialized TP all-reduces of the target's layer
    /// activations, priced off the measured curve. Independent of the TP
    /// degree; [`project`] applies it only when `tp > 1`.
    ///
    /// [`project`]: ProjectionModel::project
    #[must_use]
    pub fn serialized_ar_time(&self, target: &Hyperparams) -> f64 {
        let act_bytes = target.tokens() * target.hidden() * target.precision().bytes();
        4.0 * self.ar_model.predict(act_bytes)
    }

    /// Time of the overlappable DP gradient all-reduce of one layer's
    /// weights. [`project`] applies it only when `dp > 1`.
    ///
    /// [`project`]: ProjectionModel::project
    #[must_use]
    pub fn overlapped_ar_time(&self, target: &Hyperparams, parallel: &ParallelConfig) -> f64 {
        let grad_bytes = twocs_transformer::layer::layer_weight_elements(target, parallel)
            * target.precision().bytes();
        self.ar_model.predict(grad_bytes)
    }

    /// Project the per-layer breakdown of a target configuration.
    #[must_use]
    pub fn project(&self, target: &Hyperparams, parallel: &ParallelConfig) -> ProjectedIteration {
        let tp = parallel.tp();
        let (compute, backward_compute) = self.projected_compute(target, tp);

        // Four serialized TP all-reduces of the layer activations.
        let serialized_comm = if tp > 1 {
            self.serialized_ar_time(target)
        } else {
            0.0
        };

        // One overlappable DP gradient all-reduce per layer.
        let overlapped_comm = if parallel.dp() > 1 {
            self.overlapped_ar_time(target, parallel)
        } else {
            0.0
        };

        ProjectedIteration {
            layers: target.layers() / parallel.pp(),
            compute_per_layer: compute,
            backward_compute_per_layer: backward_compute,
            serialized_comm_per_layer: serialized_comm,
            overlapped_comm_per_layer: overlapped_comm,
        }
    }
}

/// Does this operator name mark (the start of) the backward pass?
fn is_backward_marker(name: &str) -> bool {
    name.ends_with("_bwd")
        || name.contains("_ig_")
        || name.contains("_wg_")
        || name.contains("dprobs")
        || name.contains("_dv_")
        || name.contains("_dq_")
        || name.contains("_dk_")
}

/// A projected per-layer (and per-iteration) time breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectedIteration {
    /// Layers executed per device.
    pub layers: u64,
    /// Forward + backward compute time per layer, seconds.
    pub compute_per_layer: f64,
    /// Backward-only compute time per layer, seconds (the work DP
    /// all-reduces can hide behind).
    pub backward_compute_per_layer: f64,
    /// Serialized (TP) communication per layer, seconds.
    pub serialized_comm_per_layer: f64,
    /// Overlappable (DP) communication per layer, seconds.
    pub overlapped_comm_per_layer: f64,
}

impl ProjectedIteration {
    /// Critical-path iteration time: layers × (compute + serialized comm
    /// + any exposed overlapped comm).
    #[must_use]
    pub fn iteration_time(&self) -> f64 {
        self.layers as f64
            * (self.compute_per_layer + self.serialized_comm_per_layer + self.exposed_overlap())
    }

    /// Overlapped communication that exceeds its hiding compute and spills
    /// onto the critical path, per layer.
    #[must_use]
    pub fn exposed_overlap(&self) -> f64 {
        (self.overlapped_comm_per_layer - self.backward_compute_per_layer).max(0.0)
    }

    /// Fraction of the critical path spent in serialized communication —
    /// the paper's Figure 10/12 metric.
    #[must_use]
    pub fn serialized_comm_fraction(&self) -> f64 {
        let total =
            self.compute_per_layer + self.serialized_comm_per_layer + self.exposed_overlap();
        if total <= 0.0 {
            return 0.0;
        }
        self.serialized_comm_per_layer / total
    }

    /// Overlapped communication as a fraction of the backward compute it
    /// hides behind — the paper's Figure 11/13 metric (≥ 1 means the
    /// communication is exposed).
    #[must_use]
    pub fn overlap_ratio(&self) -> f64 {
        if self.backward_compute_per_layer <= 0.0 {
            return 0.0;
        }
        self.overlapped_comm_per_layer / self.backward_compute_per_layer
    }

    /// Apply the paper's §4.3.6 hardware evolution: compute gets
    /// `flop_vs_bw`× faster while communication stands still.
    ///
    /// # Panics
    /// Panics if `flop_vs_bw` is not ≥ 1 and finite.
    #[must_use]
    pub fn with_flop_vs_bw(&self, flop_vs_bw: f64) -> Self {
        assert!(
            flop_vs_bw.is_finite() && flop_vs_bw >= 1.0,
            "flop-vs-bw ratio must be >= 1"
        );
        Self {
            compute_per_layer: self.compute_per_layer / flop_vs_bw,
            backward_compute_per_layer: self.backward_compute_per_layer / flop_vs_bw,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Hyperparams {
        Hyperparams::builder(1024)
            .heads(16)
            .seq_len(512)
            .batch(4)
            .build()
            .unwrap()
    }

    fn model() -> ProjectionModel {
        ProjectionModel::from_baseline(&baseline(), &DeviceSpec::mi210())
    }

    #[test]
    fn projecting_the_baseline_is_identity_for_compute() {
        let m = model();
        let proj = m.project(&baseline(), &ParallelConfig::new());
        let profiler = Profiler::new(DeviceSpec::mi210());
        let ground = profiler.profile_layer(&baseline(), &ParallelConfig::new());
        let measured = ground.compute_time();
        assert!(
            ((proj.compute_per_layer - measured) / measured).abs() < 1e-9,
            "projected {} vs measured {measured}",
            proj.compute_per_layer
        );
        assert_eq!(proj.serialized_comm_per_layer, 0.0);
    }

    #[test]
    fn comm_fraction_rises_with_tp() {
        let m = model();
        let target = Hyperparams::builder(16_384)
            .heads(256)
            .seq_len(2048)
            .batch(1)
            .build()
            .unwrap();
        let f16 = m
            .project(&target, &ParallelConfig::new().tensor(16))
            .serialized_comm_fraction();
        let f64_ = m
            .project(&target, &ParallelConfig::new().tensor(64))
            .serialized_comm_fraction();
        let f256 = m
            .project(&target, &ParallelConfig::new().tensor(256))
            .serialized_comm_fraction();
        assert!(f16 < f64_ && f64_ < f256, "{f16} {f64_} {f256}");
    }

    #[test]
    fn comm_fraction_falls_with_h_at_fixed_tp() {
        let m = model();
        let small = Hyperparams::builder(4096)
            .heads(64)
            .seq_len(2048)
            .batch(1)
            .build()
            .unwrap();
        let large = Hyperparams::builder(32_768)
            .heads(64)
            .seq_len(2048)
            .batch(1)
            .build()
            .unwrap();
        let par = ParallelConfig::new().tensor(32);
        let fs = m.project(&small, &par).serialized_comm_fraction();
        let fl = m.project(&large, &par).serialized_comm_fraction();
        assert!(fl < fs, "H=4K {fs} vs H=32K {fl}");
    }

    #[test]
    fn slack_shrinks_with_smaller_slb() {
        let m = model();
        let par = ParallelConfig::new().tensor(16).data(8);
        let big_slb = Hyperparams::builder(8192)
            .heads(64)
            .seq_len(8192)
            .batch(4)
            .build()
            .unwrap();
        let small_slb = Hyperparams::builder(8192)
            .heads(64)
            .seq_len(1024)
            .batch(1)
            .build()
            .unwrap();
        let r_big = m.project(&big_slb, &par).overlap_ratio();
        let r_small = m.project(&small_slb, &par).overlap_ratio();
        assert!(r_small > r_big, "small SLB {r_small} vs big SLB {r_big}");
    }

    #[test]
    fn flop_vs_bw_scaling_raises_comm_fraction() {
        let m = model();
        let target = Hyperparams::builder(16_384)
            .heads(64)
            .seq_len(2048)
            .batch(1)
            .build()
            .unwrap();
        let proj = m.project(&target, &ParallelConfig::new().tensor(64));
        let f1 = proj.serialized_comm_fraction();
        let f2 = proj.with_flop_vs_bw(2.0).serialized_comm_fraction();
        let f4 = proj.with_flop_vs_bw(4.0).serialized_comm_fraction();
        assert!(f1 < f2 && f2 < f4);
        // Compute halves exactly.
        assert!(
            (proj.with_flop_vs_bw(2.0).compute_per_layer - proj.compute_per_layer / 2.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn evolution_can_expose_overlapped_comm() {
        let m = model();
        // Small SL*B -> thin slack; 4x compute scaling should expose it.
        let target = Hyperparams::builder(2048)
            .heads(16)
            .seq_len(1024)
            .batch(1)
            .build()
            .unwrap();
        let par = ParallelConfig::new().tensor(16).data(8);
        let now = m.project(&target, &par);
        let fut = now.with_flop_vs_bw(4.0);
        assert!(fut.overlap_ratio() > now.overlap_ratio());
        if now.overlap_ratio() > 0.25 {
            assert!(
                fut.overlap_ratio() > 1.0,
                "4x scaling should expose: {}",
                fut.overlap_ratio()
            );
        }
    }

    #[test]
    fn unknown_op_projects_to_none() {
        let m = model();
        assert!(m.project_op_time("nonexistent", &baseline(), 1).is_none());
        assert!(m.project_op_time("tp_ar_attn", &baseline(), 8).is_none());
    }
}
