//! Small statistics toolkit: ordinary least squares and error metrics.
//!
//! Implemented from scratch (normal equations + Gaussian elimination with
//! partial pivoting) — more than adequate for the 2–4 parameter fits the
//! operator models need.

use std::fmt;

/// A fitted linear model `y ≈ Σ βᵢ·xᵢ` over caller-supplied features.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearFit {
    coefficients: Vec<f64>,
    r_squared: f64,
}

impl LinearFit {
    /// Fit `y ≈ X β` by ordinary least squares. `rows` are feature
    /// vectors (include a constant 1.0 for an intercept), `y` the targets.
    ///
    /// Returns `None` when the system is under-determined or singular
    /// (fewer rows than features, or collinear features).
    #[must_use]
    pub fn fit(rows: &[Vec<f64>], y: &[f64]) -> Option<Self> {
        let n = rows.len();
        if n == 0 || n != y.len() {
            return None;
        }
        let k = rows[0].len();
        if k == 0 || n < k || rows.iter().any(|r| r.len() != k) {
            return None;
        }
        // Normal equations: (XᵀX) β = Xᵀy.
        let mut xtx = vec![vec![0.0; k]; k];
        let mut xty = vec![0.0; k];
        for (row, &target) in rows.iter().zip(y) {
            for i in 0..k {
                xty[i] += row[i] * target;
                for j in 0..k {
                    xtx[i][j] += row[i] * row[j];
                }
            }
        }
        let coefficients = solve(xtx, xty)?;

        // R² against the mean model.
        let mean = y.iter().sum::<f64>() / n as f64;
        let ss_tot: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
        let ss_res: f64 = rows
            .iter()
            .zip(y)
            .map(|(row, &target)| {
                let pred: f64 = row.iter().zip(&coefficients).map(|(x, b)| x * b).sum();
                (target - pred).powi(2)
            })
            .sum();
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        Some(Self {
            coefficients,
            r_squared,
        })
    }

    /// Fitted coefficients, in feature order.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Coefficient of determination against the mean model.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Predict `y` for one feature vector.
    ///
    /// # Panics
    /// Panics if `features` has the wrong length.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.coefficients.len(),
            "feature vector length mismatch"
        );
        features
            .iter()
            .zip(&self.coefficients)
            .map(|(x, b)| x * b)
            .sum()
    }
}

impl fmt::Display for LinearFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fit β = {:?} (R² = {:.4})",
            self.coefficients, self.r_squared
        )
    }
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` for singular systems.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (cell, &p) in rest[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

/// Mean absolute percentage error of predictions vs. actuals, as a
/// fraction (0.15 = 15%). Pairs with non-positive actuals are skipped.
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn mean_abs_pct_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for (&p, &a) in predicted.iter().zip(actual) {
        if a > 0.0 {
            total += ((p - a) / a).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Geometric-mean ratio error: `exp(mean |ln(pred/actual)|) − 1`, the
/// metric the paper reports ("geomean error") — symmetric in over- and
/// under-prediction. Pairs with non-positive values are skipped.
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn geomean_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for (&p, &a) in predicted.iter().zip(actual) {
        if p > 0.0 && a > 0.0 {
            total += (p / a).ln().abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (total / count as f64).exp() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear_data_recovers_coefficients() {
        // y = 3 + 2x.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, f64::from(i)]).collect();
        let y: Vec<f64> = (0..10).map(|i| 3.0 + 2.0 * f64::from(i)).collect();
        let fit = LinearFit::fit(&rows, &y).unwrap();
        assert!((fit.coefficients()[0] - 3.0).abs() < 1e-9);
        assert!((fit.coefficients()[1] - 2.0).abs() < 1e-9);
        assert!((fit.r_squared() - 1.0).abs() < 1e-9);
        assert!((fit.predict(&[1.0, 100.0]) - 203.0).abs() < 1e-6);
    }

    #[test]
    fn quadratic_features_fit_quadratic_data() {
        // y = 1 + 0.5 x + 0.25 x².
        let rows: Vec<Vec<f64>> = (1..12)
            .map(|i| {
                let x = f64::from(i);
                vec![1.0, x, x * x]
            })
            .collect();
        let y: Vec<f64> = (1..12)
            .map(|i| {
                let x = f64::from(i);
                1.0 + 0.5 * x + 0.25 * x * x
            })
            .collect();
        let fit = LinearFit::fit(&rows, &y).unwrap();
        assert!((fit.coefficients()[2] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_has_good_r_squared() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![1.0, f64::from(i)]).collect();
        let y: Vec<f64> = (0..50)
            .map(|i| 10.0 + 4.0 * f64::from(i) + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = LinearFit::fit(&rows, &y).unwrap();
        assert!(fit.r_squared() > 0.99);
    }

    #[test]
    fn underdetermined_and_singular_systems_fail_cleanly() {
        assert!(LinearFit::fit(&[vec![1.0, 2.0]], &[1.0]).is_none());
        // Collinear features.
        let rows: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![f64::from(i), 2.0 * f64::from(i)])
            .collect();
        let y = vec![1.0; 5];
        assert!(LinearFit::fit(&rows, &y).is_none());
        assert!(LinearFit::fit(&[], &[]).is_none());
    }

    #[test]
    fn error_metrics() {
        let pred = [1.1, 0.9, 2.0];
        let act = [1.0, 1.0, 2.0];
        let mape = mean_abs_pct_error(&pred, &act);
        assert!((mape - 0.2 / 3.0).abs() < 1e-9);
        let ge = geomean_error(&pred, &act);
        assert!(ge > 0.0 && ge < 0.08);
        assert_eq!(geomean_error(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn geomean_error_is_symmetric() {
        let a = geomean_error(&[2.0], &[1.0]);
        let b = geomean_error(&[1.0], &[2.0]);
        assert!((a - b).abs() < 1e-12);
    }
}
