//! # twocs-opmodel — operator-level runtime models (the paper's §4.2)
//!
//! Profiling every future Transformer configuration is intractable; the
//! paper's empirical strategy instead:
//!
//! 1. profiles a **single baseline** model's training iteration at the
//!    operator level ([`profile`]),
//! 2. fits **operator-level models** — GEMM runtime linear in `SL`/`B` and
//!    quadratic in `H`, LayerNorm linear in both, all-reduce a
//!    size-dependent bandwidth curve ([`model`], [`stats`]),
//! 3. **projects** any target configuration's full-iteration breakdown
//!    from the baseline ([`projection`]),
//! 4. validates the projections against ground truth and accounts for the
//!    profiling cost saved ([`validation`], [`cost_accounting`]) —
//!    the paper's Figure 15 and its 2100×/1.5× speedup claims.
//!
//! In this reproduction "ground truth" is the `twocs-hw`/`twocs-sim`
//! substrate (which models the shape-dependent efficiency effects real
//! GPUs exhibit), so the projection error measured here has the same
//! origin the paper describes: *"operation efficiency improves with size"*
//! and *"GEMMs use different kernel implementations tuned per size"*.
//!
//! ## Example
//!
//! ```
//! use twocs_hw::DeviceSpec;
//! use twocs_opmodel::projection::ProjectionModel;
//! use twocs_transformer::{Hyperparams, ParallelConfig};
//!
//! let dev = DeviceSpec::mi210();
//! // Profile a BERT-like baseline once...
//! let base = Hyperparams::builder(1024).heads(16).seq_len(512).batch(4).build()?;
//! let model = ProjectionModel::from_baseline(&base, &dev);
//! // ...then project a future model without "running" it.
//! let big = Hyperparams::builder(16384).heads(64).seq_len(2048).batch(1).build()?;
//! let proj = model.project(&big, &ParallelConfig::new().tensor(64));
//! assert!(proj.serialized_comm_fraction() > 0.1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost_accounting;
pub mod model;
pub mod profile;
pub mod projection;
pub mod stats;
pub mod validation;

pub use model::{ArSizeModel, FittedOpModel, ScalingExponents};
pub use profile::{
    clear_slack_roi_cache, slack_roi_cache_stats, OperatorRecord, Profiler, SlackRoiChunk,
};
pub use projection::{ProjectedIteration, ProjectionModel};
