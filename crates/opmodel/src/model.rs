//! Operator-level runtime models (paper §4.2.2, step 2b).
//!
//! Two model families:
//!
//! * [`ScalingExponents`] — the paper's analytical scaling laws per
//!   operator class: GEMM time scales linearly with `SL`/`B`, quadratically
//!   with `H` (linearly for attention GEMMs, quadratically with `SL`
//!   instead), inversely with `TP` for sliced operators; LayerNorm scales
//!   linearly with everything and is not TP-sliced.
//! * [`ArSizeModel`] — the all-reduce runtime as a function of payload
//!   size, *measured* on the (simulated) node across a size sweep and
//!   log–log interpolated, exactly as the paper fits its measured RCCL
//!   curve (Fig. 15(c)).

use twocs_collectives::CollectiveCostModel;
use twocs_hw::network::NetworkSpec;
use twocs_transformer::Hyperparams;

/// Per-operator scaling law: `t ∝ H^h · SL^sl · B^b · TP^{-inv_tp}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingExponents {
    /// Exponent on the hidden dimension.
    pub h: f64,
    /// Exponent on the sequence length.
    pub sl: f64,
    /// Exponent on the batch size.
    pub b: f64,
    /// Exponent on `1/TP` (0 for operators that are not sliced).
    pub inv_tp: f64,
}

impl ScalingExponents {
    /// Scaling law for the named operator, per the paper's algorithmic
    /// analysis. Returns `None` for communication ops (those are priced by
    /// [`ArSizeModel`]) and unknown names.
    #[must_use]
    pub fn for_op(name: &str) -> Option<Self> {
        if name.contains("ar") && (name.starts_with("tp_") || name.starts_with("dp_")) {
            return None;
        }
        let law = if name.contains("score") || name.contains("ctx") || name.contains("softmax") {
            // Attention ops: O(H · SL² · B / TP) (heads scale with H).
            Self {
                h: 1.0,
                sl: 2.0,
                b: 1.0,
                inv_tp: 1.0,
            }
        } else if name.ends_with("_gemm") {
            // Linear-layer GEMMs: O(H² · SL · B / TP).
            Self {
                h: 2.0,
                sl: 1.0,
                b: 1.0,
                inv_tp: 1.0,
            }
        } else if name.starts_with("gelu") {
            // Activation over the sliced FF width: O(H · SL · B / TP).
            Self {
                h: 1.0,
                sl: 1.0,
                b: 1.0,
                inv_tp: 1.0,
            }
        } else if name.starts_with("ln") || name.contains("dropout") || name.contains("residual") {
            // Full-width activations, replicated across TP ranks:
            // O(H · SL · B).
            Self {
                h: 1.0,
                sl: 1.0,
                b: 1.0,
                inv_tp: 0.0,
            }
        } else {
            return None;
        };
        Some(law)
    }

    /// Multiplicative factor from a baseline `(hyper, tp)` to a target.
    #[must_use]
    pub fn scale_factor(
        &self,
        base: &Hyperparams,
        base_tp: u64,
        target: &Hyperparams,
        target_tp: u64,
    ) -> f64 {
        let h = (target.hidden() as f64 / base.hidden() as f64).powf(self.h);
        let sl = (target.seq_len() as f64 / base.seq_len() as f64).powf(self.sl);
        let b = (target.batch() as f64 / base.batch() as f64).powf(self.b);
        let tp = (base_tp as f64 / target_tp as f64).powf(self.inv_tp);
        h * sl * b * tp
    }
}

/// All-reduce runtime vs. payload size, fitted from measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ArSizeModel {
    participants: usize,
    /// `(ln bytes, ln seconds)`, ascending in bytes.
    points: Vec<(f64, f64)>,
}

impl ArSizeModel {
    /// Default measurement grid: 256 KiB to 4 GiB, ×2 steps.
    #[must_use]
    pub fn default_sizes() -> Vec<u64> {
        (0..15).map(|i| (256 * 1024) << i).collect()
    }

    /// "Measure" all-reduce times across `sizes` on the node described by
    /// `net` with `participants` ranks, and keep the curve.
    ///
    /// # Panics
    /// Panics if `sizes` has fewer than two entries or is not strictly
    /// ascending.
    #[must_use]
    pub fn profile(
        net: &NetworkSpec,
        comm_model: &CollectiveCostModel,
        participants: usize,
        sizes: &[u64],
    ) -> Self {
        assert!(sizes.len() >= 2, "need at least two sizes to interpolate");
        assert!(
            sizes.windows(2).all(|w| w[0] < w[1]),
            "sizes must be strictly ascending"
        );
        let points = sizes
            .iter()
            .map(|&s| {
                let t = comm_model.allreduce_time(s, participants, net);
                ((s as f64).ln(), t.ln())
            })
            .collect();
        Self {
            participants,
            points,
        }
    }

    /// Ranks the curve was measured with.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Predicted all-reduce time (seconds) for a payload of `bytes`,
    /// log–log interpolated (end slopes extrapolate).
    #[must_use]
    pub fn predict(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let x = (bytes as f64).ln();
        let pts = &self.points;
        // Find the segment containing x (clamped to end segments).
        let seg = match pts.iter().position(|&(px, _)| px >= x) {
            Some(0) | None if pts.len() >= 2 => {
                if x <= pts[0].0 {
                    (pts[0], pts[1])
                } else {
                    (pts[pts.len() - 2], pts[pts.len() - 1])
                }
            }
            Some(i) => (pts[i - 1], pts[i]),
            None => unreachable!("guarded by len >= 2"),
        };
        let ((x0, y0), (x1, y1)) = seg;
        let slope = (y1 - y0) / (x1 - x0);
        (y0 + slope * (x - x0)).exp()
    }

    /// Effective bandwidth (`bytes / predicted time`) at a payload size.
    #[must_use]
    pub fn bandwidth(&self, bytes: u64) -> f64 {
        let t = self.predict(bytes);
        if t <= 0.0 {
            return 0.0;
        }
        bytes as f64 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twocs_hw::DeviceSpec;

    #[test]
    fn linear_gemm_law_matches_paper_eq1() {
        let law = ScalingExponents::for_op("fc1_gemm").unwrap();
        assert_eq!((law.h, law.sl, law.b, law.inv_tp), (2.0, 1.0, 1.0, 1.0));
    }

    #[test]
    fn attention_law_matches_paper_eq2() {
        let law = ScalingExponents::for_op("attn_score_gemm").unwrap();
        assert_eq!((law.h, law.sl, law.b, law.inv_tp), (1.0, 2.0, 1.0, 1.0));
    }

    #[test]
    fn layernorm_is_linear_and_unsliced() {
        let law = ScalingExponents::for_op("ln1").unwrap();
        assert_eq!((law.h, law.sl, law.b, law.inv_tp), (1.0, 1.0, 1.0, 0.0));
        let bwd = ScalingExponents::for_op("ln2_bwd").unwrap();
        assert_eq!(bwd.inv_tp, 0.0);
    }

    #[test]
    fn comm_ops_have_no_scaling_law() {
        assert!(ScalingExponents::for_op("tp_ar_attn").is_none());
        assert!(ScalingExponents::for_op("dp_grad_ar").is_none());
        assert!(ScalingExponents::for_op("unknown_op").is_none());
    }

    #[test]
    fn scale_factor_composition() {
        let base = Hyperparams::builder(1024)
            .heads(16)
            .seq_len(512)
            .batch(4)
            .build()
            .unwrap();
        let target = Hyperparams::builder(4096)
            .heads(32)
            .seq_len(1024)
            .batch(2)
            .build()
            .unwrap();
        let law = ScalingExponents::for_op("fc1_gemm").unwrap();
        // (4096/1024)² · (1024/512) · (2/4) · (1/8) = 16 · 2 · 0.5 · 0.125.
        let f = law.scale_factor(&base, 1, &target, 8);
        assert!((f - 2.0).abs() < 1e-9, "factor {f}");
    }

    #[test]
    fn ar_model_interpolates_monotonically() {
        let dev = DeviceSpec::mi210();
        let m = ArSizeModel::profile(
            dev.network(),
            &CollectiveCostModel::default(),
            4,
            &ArSizeModel::default_sizes(),
        );
        let mut prev = 0.0;
        for s in [1u64 << 18, 1 << 20, 1 << 24, 1 << 28, 1 << 31] {
            let t = m.predict(s);
            assert!(t > prev, "time must grow with size");
            prev = t;
        }
    }

    #[test]
    fn ar_model_matches_measurement_at_grid_points() {
        let dev = DeviceSpec::mi210();
        let cm = CollectiveCostModel::default();
        let sizes = ArSizeModel::default_sizes();
        let m = ArSizeModel::profile(dev.network(), &cm, 4, &sizes);
        for &s in &sizes {
            let measured = cm.allreduce_time(s, 4, dev.network());
            let predicted = m.predict(s);
            assert!(
                ((predicted - measured) / measured).abs() < 1e-9,
                "grid point {s}"
            );
        }
    }

    #[test]
    fn ar_bandwidth_saturates_with_size() {
        let dev = DeviceSpec::mi210();
        let m = ArSizeModel::profile(
            dev.network(),
            &CollectiveCostModel::default(),
            4,
            &ArSizeModel::default_sizes(),
        );
        assert!(m.bandwidth(1 << 20) < m.bandwidth(1 << 30));
        assert!(m.bandwidth(1 << 30) < 160e9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_sizes_rejected() {
        let dev = DeviceSpec::mi210();
        let _ = ArSizeModel::profile(
            dev.network(),
            &CollectiveCostModel::default(),
            4,
            &[1024, 512],
        );
    }
}

/// An operator model *fitted* from profiled measurements (rather than
/// scaled analytically): ordinary least squares over the features the
/// paper's analysis prescribes — `[1, SL]` for GEMMs at fixed `H`
/// (linear), `[1, H, H²]` for GEMMs at fixed `SL` (quadratic), `[1, x]`
/// for LayerNorm along either axis.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedOpModel {
    fit: crate::stats::LinearFit,
    degree: u32,
}

impl FittedOpModel {
    /// Fit `time = β₀ + β₁·x (+ β₂·x²)` over `(x, seconds)` samples.
    /// `degree` is 1 (linear) or 2 (quadratic).
    ///
    /// Returns `None` for unfittable inputs (fewer samples than
    /// coefficients, collinear features).
    ///
    /// # Panics
    /// Panics if `degree` is not 1 or 2.
    #[must_use]
    pub fn fit(samples: &[(f64, f64)], degree: u32) -> Option<Self> {
        assert!(degree == 1 || degree == 2, "degree must be 1 or 2");
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|&(x, _)| {
                let mut row = vec![1.0, x];
                if degree == 2 {
                    row.push(x * x);
                }
                row
            })
            .collect();
        let y: Vec<f64> = samples.iter().map(|&(_, t)| t).collect();
        let fit = crate::stats::LinearFit::fit(&rows, &y)?;
        Some(Self { fit, degree })
    }

    /// Predicted runtime (seconds) at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        let mut row = vec![1.0, x];
        if self.degree == 2 {
            row.push(x * x);
        }
        self.fit.predict(&row)
    }

    /// Goodness of fit against the mean model.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.fit.r_squared()
    }
}

#[cfg(test)]
mod fitted_tests {
    use super::*;
    use crate::profile::Profiler;
    use twocs_hw::DeviceSpec;
    use twocs_transformer::layer::encoder_layer_forward;
    use twocs_transformer::{Hyperparams, ParallelConfig};

    fn gemm_time_at(device: &DeviceSpec, h: u64, sl: u64) -> f64 {
        let hyper = Hyperparams::builder(h)
            .heads((h / 64).max(1))
            .seq_len(sl)
            .batch(1)
            .build()
            .unwrap();
        let profiler = Profiler::new(device.clone());
        encoder_layer_forward(&hyper, &ParallelConfig::new())
            .iter()
            .find(|o| o.name() == "fc1_gemm")
            .map(|o| profiler.profile_op(o, &hyper).time)
            .unwrap()
    }

    #[test]
    fn linear_fit_captures_gemm_vs_sl() {
        // Fig. 15(a): GEMM runtime vs SL fits a line (R² near 1) and
        // interpolates unseen sequence lengths accurately.
        let dev = DeviceSpec::mi210();
        let samples: Vec<(f64, f64)> = [512u64, 1024, 2048, 8192]
            .iter()
            .map(|&sl| (sl as f64, gemm_time_at(&dev, 4096, sl)))
            .collect();
        let model = FittedOpModel::fit(&samples, 1).unwrap();
        assert!(model.r_squared() > 0.99, "R² {}", model.r_squared());
        let measured = gemm_time_at(&dev, 4096, 4096); // held out
        let predicted = model.predict(4096.0);
        let err = ((predicted - measured) / measured).abs();
        assert!(err < 0.15, "held-out SL=4096 error {err}");
    }

    #[test]
    fn quadratic_fit_captures_gemm_vs_h() {
        let dev = DeviceSpec::mi210();
        let samples: Vec<(f64, f64)> = [1024u64, 2048, 4096, 16_384]
            .iter()
            .map(|&h| (h as f64, gemm_time_at(&dev, h, 2048)))
            .collect();
        let model = FittedOpModel::fit(&samples, 2).unwrap();
        assert!(model.r_squared() > 0.99, "R² {}", model.r_squared());
        let measured = gemm_time_at(&dev, 8192, 2048); // held out
        let predicted = model.predict(8192.0);
        let err = ((predicted - measured) / measured).abs();
        assert!(err < 0.15, "held-out H=8192 error {err}");
    }

    #[test]
    fn underdetermined_fit_is_none() {
        assert!(FittedOpModel::fit(&[(1.0, 1.0)], 1).is_none());
        assert!(FittedOpModel::fit(&[(1.0, 1.0), (2.0, 2.0)], 2).is_none());
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn cubic_degree_rejected() {
        let _ = FittedOpModel::fit(&[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)], 3);
    }
}
