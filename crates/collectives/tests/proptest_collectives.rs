//! Property-based tests for collective schedules and their data plane.

use proptest::prelude::*;
use twocs_collectives::algorithm::{Algorithm, Collective};
use twocs_collectives::dataplane::{run_allreduce, run_broadcast};

fn inputs_strategy() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (2usize..10, 1usize..50).prop_flat_map(|(n, elements)| {
        proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, elements..=elements),
            n..=n,
        )
    })
}

fn pow2_inputs_strategy() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (1usize..4, 1usize..50).prop_flat_map(|(log_n, elements)| {
        let n = 1 << log_n;
        proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, elements..=elements),
            n..=n,
        )
    })
}

fn exact_sum(inputs: &[Vec<f32>]) -> Vec<f64> {
    let mut out = vec![0.0f64; inputs[0].len()];
    for buf in inputs {
        for (o, &v) in out.iter_mut().zip(buf) {
            *o += f64::from(v);
        }
    }
    out
}

fn assert_close(actual: &[f32], expect: &[f64]) -> Result<(), TestCaseError> {
    for (i, (&a, &e)) in actual.iter().zip(expect).enumerate() {
        let tol = 1e-3 * (1.0 + e.abs());
        prop_assert!(
            (f64::from(a) - e).abs() <= tol,
            "element {i}: got {a}, want {e}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ring_allreduce_computes_global_sum(inputs in inputs_strategy()) {
        let expect = exact_sum(&inputs);
        let outputs = run_allreduce(Algorithm::Ring, &inputs).unwrap();
        for out in &outputs {
            assert_close(out, &expect)?;
        }
        // All ranks agree bit-for-bit is NOT guaranteed by ring order, but
        // all must match the true sum within tolerance (checked above).
    }

    #[test]
    fn tree_allreduce_computes_global_sum(inputs in inputs_strategy()) {
        let expect = exact_sum(&inputs);
        let outputs = run_allreduce(Algorithm::Tree, &inputs).unwrap();
        for out in &outputs {
            assert_close(out, &expect)?;
        }
    }

    #[test]
    fn halving_doubling_computes_global_sum(inputs in pow2_inputs_strategy()) {
        let expect = exact_sum(&inputs);
        let outputs = run_allreduce(Algorithm::HalvingDoubling, &inputs).unwrap();
        for out in &outputs {
            assert_close(out, &expect)?;
        }
    }

    #[test]
    fn broadcast_replicates_rank_zero(inputs in inputs_strategy()) {
        let root = inputs[0].clone();
        let outputs = run_broadcast(&inputs).unwrap();
        for out in &outputs {
            prop_assert_eq!(out, &root);
        }
    }

    #[test]
    fn ring_traffic_matches_lower_bound(
        n in 2usize..12,
        elements_per_rank in 1usize..64,
    ) {
        // Traffic formula holds exactly when N divides the payload.
        let elements = elements_per_rank * n;
        let schedule = Algorithm::Ring
            .schedule(Collective::AllReduce, n, elements)
            .unwrap();
        let expected = Collective::AllReduce.bytes_per_device(elements as u64, n);
        for r in 0..n {
            prop_assert_eq!(schedule.elements_sent_by(r) as f64, expected);
        }
    }

    #[test]
    fn every_allreduce_schedule_touches_all_ranks(
        n in 2usize..10,
        elements in 1usize..100,
    ) {
        for alg in [Algorithm::Ring, Algorithm::Tree] {
            let schedule = alg.schedule(Collective::AllReduce, n, elements).unwrap();
            for r in 0..n {
                let participates = schedule
                    .steps()
                    .iter()
                    .flat_map(|s| &s.transfers)
                    .any(|t| t.src == r || t.dst == r);
                prop_assert!(participates, "rank {r} idle under {:?}", alg);
            }
        }
    }
}
