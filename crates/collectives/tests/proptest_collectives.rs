//! Property-based tests for collective schedules and their data plane,
//! on the std-only `twocs-testkit` case driver.

use twocs_collectives::algorithm::{Algorithm, Collective};
use twocs_collectives::dataplane::{run_allreduce, run_broadcast};
use twocs_testkit::{cases, Rng};

/// `n` rank buffers of the same random length, values in ±100.
fn gen_inputs(rng: &mut Rng, n: usize) -> Vec<Vec<f32>> {
    let elements = rng.usize_in(1..50);
    (0..n)
        .map(|_| rng.vec_of(elements, |r| r.f32_in(-100.0..100.0)))
        .collect()
}

fn inputs(rng: &mut Rng) -> Vec<Vec<f32>> {
    let n = rng.usize_in(2..10);
    gen_inputs(rng, n)
}

fn pow2_inputs(rng: &mut Rng) -> Vec<Vec<f32>> {
    let n = 1 << rng.usize_in(1..4);
    gen_inputs(rng, n)
}

fn exact_sum(inputs: &[Vec<f32>]) -> Vec<f64> {
    let mut out = vec![0.0f64; inputs[0].len()];
    for buf in inputs {
        for (o, &v) in out.iter_mut().zip(buf) {
            *o += f64::from(v);
        }
    }
    out
}

fn assert_close(actual: &[f32], expect: &[f64]) {
    for (i, (&a, &e)) in actual.iter().zip(expect).enumerate() {
        let tol = 1e-3 * (1.0 + e.abs());
        assert!(
            (f64::from(a) - e).abs() <= tol,
            "element {i}: got {a}, want {e}"
        );
    }
}

#[test]
fn ring_allreduce_computes_global_sum() {
    cases(48, |rng| {
        let inputs = inputs(rng);
        let expect = exact_sum(&inputs);
        let outputs = run_allreduce(Algorithm::Ring, &inputs).unwrap();
        for out in &outputs {
            assert_close(out, &expect);
        }
        // All ranks agree bit-for-bit is NOT guaranteed by ring order, but
        // all must match the true sum within tolerance (checked above).
    });
}

#[test]
fn tree_allreduce_computes_global_sum() {
    cases(48, |rng| {
        let inputs = inputs(rng);
        let expect = exact_sum(&inputs);
        let outputs = run_allreduce(Algorithm::Tree, &inputs).unwrap();
        for out in &outputs {
            assert_close(out, &expect);
        }
    });
}

#[test]
fn halving_doubling_computes_global_sum() {
    cases(48, |rng| {
        let inputs = pow2_inputs(rng);
        let expect = exact_sum(&inputs);
        let outputs = run_allreduce(Algorithm::HalvingDoubling, &inputs).unwrap();
        for out in &outputs {
            assert_close(out, &expect);
        }
    });
}

#[test]
fn broadcast_replicates_rank_zero() {
    cases(48, |rng| {
        let inputs = inputs(rng);
        let root = inputs[0].clone();
        let outputs = run_broadcast(&inputs).unwrap();
        for out in &outputs {
            assert_eq!(out, &root);
        }
    });
}

#[test]
fn ring_traffic_matches_lower_bound() {
    cases(48, |rng| {
        let n = rng.usize_in(2..12);
        let elements_per_rank = rng.usize_in(1..64);
        // Traffic formula holds exactly when N divides the payload.
        let elements = elements_per_rank * n;
        let schedule = Algorithm::Ring
            .schedule(Collective::AllReduce, n, elements)
            .unwrap();
        let expected = Collective::AllReduce.bytes_per_device(elements as u64, n);
        for r in 0..n {
            assert_eq!(schedule.elements_sent_by(r) as f64, expected);
        }
    });
}

#[test]
fn every_allreduce_schedule_touches_all_ranks() {
    cases(48, |rng| {
        let n = rng.usize_in(2..10);
        let elements = rng.usize_in(1..100);
        for alg in [Algorithm::Ring, Algorithm::Tree] {
            let schedule = alg.schedule(Collective::AllReduce, n, elements).unwrap();
            for r in 0..n {
                let participates = schedule
                    .steps()
                    .iter()
                    .flat_map(|s| &s.transfers)
                    .any(|t| t.src == r || t.dst == r);
                assert!(participates, "rank {r} idle under {alg:?}");
            }
        }
    });
}
