//! Transfer schedules: the common representation of all collective
//! algorithms.
//!
//! A [`CommSchedule`] is a sequence of bulk-synchronous steps; each step is
//! a set of element-range transfers that may proceed in parallel. The same
//! schedule drives three consumers:
//!
//! 1. the [`dataplane`](crate::dataplane), which executes it over real
//!    buffers to verify semantics;
//! 2. [`CommSchedule::to_task_graph`], which lowers it to `twocs-sim`
//!    tasks to measure its simulated wall-clock cost;
//! 3. byte accounting ([`CommSchedule::bytes_sent_by`]) used to check the
//!    analytic traffic formulas.

use twocs_hw::network::LinkSpec;
use twocs_hw::topology::Topology;
use twocs_sim::graph::TaskGraph;
use twocs_sim::task::{DeviceId, TaskId};

/// What a transfer does with the payload at the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferOp {
    /// Element-wise add into the destination buffer (reduction).
    Reduce,
    /// Overwrite the destination range (gather/broadcast).
    Copy,
}

/// One element-range transfer between two devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTransfer {
    /// Sending device (rank).
    pub src: usize,
    /// Receiving device (rank).
    pub dst: usize,
    /// Element range `[start, end)` of the logical buffer.
    pub start: usize,
    /// Exclusive end of the range.
    pub end: usize,
    /// Start of the destination range (length always matches the source
    /// range). Equal to `start` for every algorithm except all-to-all,
    /// which writes the payload into the *source's* chunk slot.
    pub dst_start: usize,
    /// Reduction or copy at the destination.
    pub op: TransferOp,
}

impl ChunkTransfer {
    /// Number of elements moved.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the range is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// One bulk-synchronous step of parallel transfers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStep {
    /// Transfers in this step (parallel, disjoint links in well-formed
    /// schedules).
    pub transfers: Vec<ChunkTransfer>,
}

/// A complete schedule for one collective over `participants` devices on a
/// logical buffer of `elements` elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommSchedule {
    participants: usize,
    elements: usize,
    steps: Vec<CommStep>,
}

impl CommSchedule {
    /// Create a schedule from raw steps.
    ///
    /// # Panics
    /// Panics if any transfer references an out-of-range rank or element.
    #[must_use]
    pub fn new(participants: usize, elements: usize, steps: Vec<CommStep>) -> Self {
        for step in &steps {
            for t in &step.transfers {
                assert!(
                    t.src < participants && t.dst < participants,
                    "transfer rank out of range"
                );
                assert!(t.src != t.dst, "self transfer");
                assert!(t.start <= t.end && t.end <= elements, "range out of bounds");
                assert!(
                    t.dst_start + (t.end - t.start) <= elements,
                    "destination range out of bounds"
                );
            }
        }
        Self {
            participants,
            elements,
            steps,
        }
    }

    /// Number of participating devices.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Logical buffer length in elements.
    #[must_use]
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// The steps, in order.
    #[must_use]
    pub fn steps(&self) -> &[CommStep] {
        &self.steps
    }

    /// Total elements sent by device `rank` over the whole schedule.
    #[must_use]
    pub fn elements_sent_by(&self, rank: usize) -> usize {
        self.steps
            .iter()
            .flat_map(|s| &s.transfers)
            .filter(|t| t.src == rank)
            .map(ChunkTransfer::len)
            .sum()
    }

    /// Total bytes sent by device `rank` given an element width.
    #[must_use]
    pub fn bytes_sent_by(&self, rank: usize, elem_bytes: u64) -> u64 {
        self.elements_sent_by(rank) as u64 * elem_bytes
    }

    /// Total elements crossing the network in the whole schedule.
    #[must_use]
    pub fn total_elements_on_wire(&self) -> usize {
        (0..self.participants)
            .map(|r| self.elements_sent_by(r))
            .sum()
    }

    /// Lower to a `twocs-sim` [`TaskGraph`]: each transfer is a p2p task
    /// whose duration comes from the `link` model; steps are separated by
    /// barriers (bulk-synchronous execution, like chunk-stepped RCCL).
    ///
    /// Returns the graph and the id of the final barrier (the collective's
    /// completion), or `None` if the schedule is empty.
    #[must_use]
    pub fn to_task_graph(&self, elem_bytes: u64, link: &LinkSpec) -> (TaskGraph, Option<TaskId>) {
        let mut g = TaskGraph::new(self.participants);
        let mut prev_barrier: Option<TaskId> = None;
        for (si, step) in self.steps.iter().enumerate() {
            let deps: Vec<TaskId> = prev_barrier.into_iter().collect();
            let mut ids = Vec::with_capacity(step.transfers.len());
            for (ti, t) in step.transfers.iter().enumerate() {
                let bytes = t.len() as u64 * elem_bytes;
                let secs = link.transfer_time(bytes);
                ids.push(g.transfer(
                    DeviceId(t.src),
                    DeviceId(t.dst),
                    format!("s{si}t{ti}"),
                    secs,
                    &deps,
                ));
            }
            prev_barrier = Some(g.barrier(format!("step{si}"), &ids));
        }
        (g, prev_barrier)
    }

    /// Lower to a task graph pricing each transfer by the *path* between
    /// its endpoints in `topology` — cross-node hops pay the slower
    /// inter-node links, intra-node hops the fast ones. Device ranks map
    /// to topology device indices directly.
    ///
    /// # Panics
    /// Panics if the topology has fewer devices than the schedule has
    /// participants.
    #[must_use]
    pub fn to_task_graph_on_topology(
        &self,
        elem_bytes: u64,
        topology: &Topology,
    ) -> (TaskGraph, Option<TaskId>) {
        assert!(
            topology.devices() >= self.participants,
            "topology has {} devices, schedule needs {}",
            topology.devices(),
            self.participants
        );
        let mut g = TaskGraph::new(self.participants);
        let mut prev_barrier: Option<TaskId> = None;
        for (si, step) in self.steps.iter().enumerate() {
            let deps: Vec<TaskId> = prev_barrier.into_iter().collect();
            let mut ids = Vec::with_capacity(step.transfers.len());
            for (ti, t) in step.transfers.iter().enumerate() {
                let bytes = t.len() as u64 * elem_bytes;
                let path = topology
                    .path(t.src, t.dst)
                    .expect("ranks validated against topology size");
                let secs = path.transfer_time(bytes);
                ids.push(g.transfer(
                    DeviceId(t.src),
                    DeviceId(t.dst),
                    format!("s{si}t{ti}"),
                    secs,
                    &deps,
                ));
            }
            prev_barrier = Some(g.barrier(format!("step{si}"), &ids));
        }
        (g, prev_barrier)
    }

    /// Split `elements` into `parts` contiguous chunk ranges, distributing
    /// the remainder over the leading chunks (chunks differ by ≤ 1).
    #[must_use]
    pub fn chunk_ranges(elements: usize, parts: usize) -> Vec<(usize, usize)> {
        assert!(parts > 0, "parts must be non-zero");
        let base = elements / parts;
        let extra = elements % parts;
        let mut out = Vec::with_capacity(parts);
        let mut cursor = 0;
        for i in 0..parts {
            let len = base + usize::from(i < extra);
            out.push((cursor, cursor + len));
            cursor += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xfer(src: usize, dst: usize, start: usize, end: usize, op: TransferOp) -> ChunkTransfer {
        ChunkTransfer {
            src,
            dst,
            start,
            end,
            dst_start: start,
            op,
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (elements, parts) in [(10, 3), (8, 4), (7, 8), (0, 2), (100, 7)] {
            let ranges = CommSchedule::chunk_ranges(elements, parts);
            assert_eq!(ranges.len(), parts);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges[parts - 1].1, elements);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            let max = ranges.iter().map(|(s, e)| e - s).max().unwrap();
            let min = ranges.iter().map(|(s, e)| e - s).min().unwrap();
            assert!(max - min <= 1, "balanced");
        }
    }

    #[test]
    fn byte_accounting() {
        let s = CommSchedule::new(
            2,
            10,
            vec![CommStep {
                transfers: vec![xfer(0, 1, 0, 10, TransferOp::Reduce)],
            }],
        );
        assert_eq!(s.elements_sent_by(0), 10);
        assert_eq!(s.elements_sent_by(1), 0);
        assert_eq!(s.bytes_sent_by(0, 2), 20);
        assert_eq!(s.total_elements_on_wire(), 10);
    }

    #[test]
    fn task_graph_serializes_steps() {
        use twocs_sim::Engine;
        let link = LinkSpec::new(100e9, 0.0, 0.0).unwrap();
        let s = CommSchedule::new(
            2,
            100,
            vec![
                CommStep {
                    transfers: vec![xfer(0, 1, 0, 100, TransferOp::Reduce)],
                },
                CommStep {
                    transfers: vec![xfer(1, 0, 0, 100, TransferOp::Copy)],
                },
            ],
        );
        let (g, end) = s.to_task_graph(4, &link);
        assert!(end.is_some());
        let r = Engine::new().run(&g).unwrap();
        // Two serialized 400-byte transfers at 100 GB/s with zero ramp.
        let expected = 2.0 * 400.0 / 100e9;
        assert!((r.makespan().as_secs_f64() - expected).abs() < 1e-12);
    }

    #[test]
    fn topology_lowering_pays_for_cross_node_hops() {
        use twocs_sim::Engine;
        let intra = LinkSpec::new(50e9, 0.0, 0.0).unwrap();
        let inter = LinkSpec::new(5e9, 0.0, 0.0).unwrap();
        let flat = Topology::FullyConnected {
            devices: 8,
            link: intra,
        };
        let multi = Topology::Hierarchical {
            nodes: 2,
            node_size: 4,
            intra,
            inter,
        };
        let schedule = crate::algorithm::Algorithm::Ring
            .schedule(crate::algorithm::Collective::AllReduce, 8, 8 << 20)
            .unwrap();
        let run = |topo: &Topology| {
            let (g, _) = schedule.to_task_graph_on_topology(4, topo);
            Engine::new().run(&g).unwrap().makespan().as_secs_f64()
        };
        let t_flat = run(&flat);
        let t_multi = run(&multi);
        // The naive (topology-oblivious) ring crosses the slow inter-node
        // link on every step, so it should be several times slower — the
        // reason hierarchical algorithms exist.
        assert!(
            t_multi > 3.0 * t_flat,
            "flat {t_flat} vs hierarchical {t_multi}"
        );
    }

    #[test]
    #[should_panic(expected = "self transfer")]
    fn self_transfer_rejected() {
        let _ = CommSchedule::new(
            2,
            10,
            vec![CommStep {
                transfers: vec![xfer(0, 0, 0, 5, TransferOp::Copy)],
            }],
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_elements_rejected() {
        let _ = CommSchedule::new(
            2,
            10,
            vec![CommStep {
                transfers: vec![xfer(0, 1, 5, 12, TransferOp::Copy)],
            }],
        );
    }
}
