//! # twocs-collectives — collective communication algorithms
//!
//! The paper's communication costs all come from collectives — above all
//! the **all-reduce** used by tensor parallelism (serialized, on the
//! critical path) and data parallelism (overlapped with backprop). This
//! crate implements the collectives themselves:
//!
//! * [`schedule`] — step-by-step transfer schedules for ring, binomial
//!   tree, and recursive-halving-doubling algorithms, over any device
//!   count, as produced by [`algorithm::Algorithm::schedule`].
//! * [`dataplane`] — a functional execution of a schedule over real `f32`
//!   buffers. This is how the crate *proves* its schedules are correct:
//!   property tests check that every device ends with the exact reduction
//!   and that the bytes each device moves match the analytic formulas
//!   (e.g. `2 (N-1)/N · S` per device for a ring all-reduce).
//! * [`cost`] — the analytic α–β cost model with message-size-dependent
//!   bandwidth, used by the workload builders to price collectives, and
//!   validated against discrete-event simulation of the full schedules.
//!
//! ## Example
//!
//! ```
//! use twocs_collectives::{algorithm::Algorithm, dataplane::run_allreduce};
//!
//! // 4 devices, each contributing [rank; 8]: all end with the sum 0+1+2+3.
//! let inputs: Vec<Vec<f32>> = (0..4).map(|r| vec![r as f32; 8]).collect();
//! let outputs = run_allreduce(Algorithm::Ring, &inputs).unwrap();
//! for out in &outputs {
//!     assert_eq!(out, &vec![6.0; 8]);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithm;
pub mod cost;
pub mod dataplane;
pub mod error;
pub mod schedule;

pub use algorithm::{Algorithm, Collective};
pub use cost::{clear_node_time_cache, node_time_cache_stats, CollectiveCostModel};
pub use error::CollectiveError;
pub use schedule::CommSchedule;
