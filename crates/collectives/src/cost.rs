//! Analytic collective cost models.
//!
//! Two levels of fidelity:
//!
//! * [`CollectiveCostModel::time_on_link`] — the classic α–β model applied
//!   step-by-step to a schedule's structure over one [`LinkSpec`]. It
//!   agrees closely with discrete-event simulation of the full schedule
//!   (validated in this module's tests), and powers the ring/tree/
//!   halving-doubling ablation.
//! * [`CollectiveCostModel::node_time`] — the *node-calibrated* model used
//!   by the workload builders: it anchors on the measured peak algorithmic
//!   all-reduce bandwidth of the node (150 GB/s for the paper's 4×MI210
//!   machine) and degrades it for small per-step chunks, reproducing the
//!   sub-linear small-message behaviour highlighted in §4.3.5 and
//!   Fig. 15(c).

use crate::algorithm::{Algorithm, Collective};
use std::sync::LazyLock;
use twocs_hw::cache::{CacheStats, MemoCache};
use twocs_hw::network::{LinkSpec, NetworkSpec};
use twocs_hw::topology::Topology;

/// Cache key for [`CollectiveCostModel::node_time`]: the collective kind,
/// payload, rank count, the node's effective ring-all-reduce bandwidth
/// (which already folds in the PIN mode), and the model's two constants.
type NodeTimeKey = (u8, u64, u64, u64, u64, u64);

/// Global memo table for [`CollectiveCostModel::node_time`]. The sweep
/// engine prices the same (collective, bytes, ranks, node) query for every
/// grid point that shares a hardware configuration.
static NODE_TIME: LazyLock<MemoCache<NodeTimeKey, f64>> =
    LazyLock::new(|| MemoCache::named("collective"));

/// Counters of the global collective-cost cache.
#[must_use]
pub fn node_time_cache_stats() -> CacheStats {
    NODE_TIME.stats()
}

/// Empty the global collective-cost cache and zero its counters.
pub fn clear_node_time_cache() {
    NODE_TIME.clear();
}

/// Tunable constants of the analytic cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveCostModel {
    /// Per-step software latency (kernel launch, handshake), seconds.
    step_latency: f64,
    /// Per-step chunk size at which effective bandwidth reaches half of
    /// peak, bytes.
    chunk_ramp_bytes: f64,
}

impl CollectiveCostModel {
    /// Create a model.
    ///
    /// # Panics
    /// Panics if either parameter is negative or non-finite.
    #[must_use]
    pub fn new(step_latency: f64, chunk_ramp_bytes: f64) -> Self {
        assert!(
            step_latency.is_finite() && step_latency >= 0.0,
            "step_latency must be non-negative"
        );
        assert!(
            chunk_ramp_bytes.is_finite() && chunk_ramp_bytes >= 0.0,
            "chunk_ramp_bytes must be non-negative"
        );
        Self {
            step_latency,
            chunk_ramp_bytes,
        }
    }

    /// Per-step software latency, seconds.
    #[must_use]
    pub fn step_latency(&self) -> f64 {
        self.step_latency
    }

    /// Chunk half-saturation size, bytes.
    #[must_use]
    pub fn chunk_ramp_bytes(&self) -> f64 {
        self.chunk_ramp_bytes
    }

    /// Saturation factor for a per-step chunk of `bytes`.
    fn saturation(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        bytes / (bytes + self.chunk_ramp_bytes)
    }

    /// Number of bulk-synchronous steps `algorithm` takes for `collective`
    /// over `n` ranks.
    #[must_use]
    pub fn steps(algorithm: Algorithm, collective: Collective, n: usize) -> usize {
        if n < 2 {
            return 0;
        }
        let log2n = usize::BITS as usize - (n - 1).leading_zeros() as usize;
        match (collective, algorithm) {
            (Collective::AllReduce, Algorithm::Ring) => 2 * (n - 1),
            (Collective::AllReduce, Algorithm::Tree | Algorithm::HalvingDoubling) => 2 * log2n,
            // Direct all-reduce: every rank pushes its full buffer to all
            // peers in one bulk-synchronous exchange, then reduces
            // locally — a single latency-bearing step, not ring chunking.
            (Collective::AllReduce, Algorithm::Direct) => 1,
            (Collective::ReduceScatter | Collective::AllGather | Collective::AllToAll, _) => n - 1,
            (Collective::Broadcast, _) => log2n,
        }
    }

    /// α–β cost of `collective` via `algorithm` over a single link model:
    /// `steps · (α + chunk / eff_bw(chunk))` with the per-step chunk
    /// implied by the algorithm. Matches the simulated schedule closely.
    #[must_use]
    pub fn time_on_link(
        &self,
        collective: Collective,
        algorithm: Algorithm,
        bytes: u64,
        n: usize,
        link: &LinkSpec,
    ) -> f64 {
        if n < 2 || bytes == 0 {
            return 0.0;
        }
        let steps = Self::steps(algorithm, collective, n) as f64;
        let s = bytes as f64;
        match (collective, algorithm) {
            // Full payload per step (binomial tree).
            (Collective::AllReduce | Collective::Broadcast, Algorithm::Tree) => {
                steps * (link.latency() + s / link.effective_bandwidth(bytes))
            }
            // Halving-doubling: payload halves each step of each phase:
            // S/2 + S/4 + ... ≈ (N-1)/N·S per phase.
            (Collective::AllReduce, Algorithm::HalvingDoubling) => {
                let phase_bytes = s * (n as f64 - 1.0) / n as f64;
                let avg_chunk = (phase_bytes / (steps / 2.0)).max(1.0) as u64;
                steps * link.latency() + 2.0 * phase_bytes / link.effective_bandwidth(avg_chunk)
            }
            // Direct all-reduce: one α, full-payload chunks at full-size
            // bandwidth efficiency, but (n-1)·S serialized through each
            // rank's link — latency-dominated at small n, bandwidth-ruinous
            // at scale.
            (Collective::AllReduce, Algorithm::Direct) => {
                link.latency() + (n as f64 - 1.0) * s / link.effective_bandwidth(bytes)
            }
            // Chunked ring-style: S/N per step.
            _ => {
                let chunk = (s / n as f64).max(1.0) as u64;
                steps * (link.latency() + chunk as f64 / link.effective_bandwidth(chunk))
            }
        }
    }

    /// Node-calibrated time of `collective` over `n` ranks using the
    /// node's peak algorithmic all-reduce bandwidth (paper §4.3.1).
    ///
    /// `t = steps·α + payload / (B_alg · sat(S/N))`, where `payload` is the
    /// all-reduce-normalized volume (all-gather and reduce-scatter move
    /// half an all-reduce; all-to-all likewise).
    ///
    /// Memoized globally (see [`node_time_cache_stats`]): the analysis
    /// sweeps re-price identical collectives for every grid point that
    /// shares a hardware configuration.
    #[must_use]
    pub fn node_time(
        &self,
        collective: Collective,
        bytes: u64,
        n: usize,
        net: &NetworkSpec,
    ) -> f64 {
        if n < 2 || bytes == 0 {
            return 0.0;
        }
        let key: NodeTimeKey = (
            collective as u8,
            bytes,
            n as u64,
            net.ring_allreduce_bandwidth().to_bits(),
            self.step_latency.to_bits(),
            self.chunk_ramp_bytes.to_bits(),
        );
        NODE_TIME.get_or_insert_with(key, || {
            let steps = Self::steps(Algorithm::Ring, collective, n) as f64;
            let s = bytes as f64;
            let chunk = s / n as f64;
            let bw = net.ring_allreduce_bandwidth() * self.saturation(chunk);
            let normalized_volume = match collective {
                Collective::AllReduce => s,
                Collective::ReduceScatter | Collective::AllGather | Collective::AllToAll => s / 2.0,
                Collective::Broadcast => s / 2.0,
            };
            steps * self.step_latency + normalized_volume / bw
        })
    }

    /// Ring all-reduce node time — the workhorse for TP and DP costs.
    #[must_use]
    pub fn allreduce_time(&self, bytes: u64, n: usize, net: &NetworkSpec) -> f64 {
        self.node_time(Collective::AllReduce, bytes, n, net)
    }

    /// All-to-all node time (MoE expert parallelism).
    #[must_use]
    pub fn alltoall_time(&self, bytes: u64, n: usize, net: &NetworkSpec) -> f64 {
        self.node_time(Collective::AllToAll, bytes, n, net)
    }

    /// All-reduce time over an explicit [`Topology`].
    ///
    /// Single-node topologies fall back to [`Self::node_time`] semantics
    /// using the bottleneck link; hierarchical topologies use the standard
    /// **two-level algorithm** — intra-node reduce-scatter, inter-node
    /// all-reduce of the shards over the (slower) inter-node links, then
    /// intra-node all-gather — which is how production collectives span
    /// nodes (paper §4.3.7's inter-node discussion).
    #[must_use]
    pub fn allreduce_time_on_topology(
        &self,
        bytes: u64,
        topology: &Topology,
        net: &NetworkSpec,
    ) -> f64 {
        let n = topology.devices();
        if n < 2 || bytes == 0 {
            return 0.0;
        }
        match topology {
            Topology::Hierarchical {
                nodes, node_size, ..
            } if *nodes > 1 => {
                let node_size = (*node_size).max(1);
                // Phase 1/3: intra-node reduce-scatter + all-gather.
                let intra_rs = self.node_time(Collective::ReduceScatter, bytes, node_size, net);
                let intra_ag = self.node_time(Collective::AllGather, bytes, node_size, net);
                // Phase 2: inter-node all-reduce of the 1/node_size shard,
                // one rank per node, over inter-node link quality.
                let shard = (bytes / node_size as u64).max(1);
                let inter = self.time_on_link(
                    Collective::AllReduce,
                    Algorithm::Ring,
                    shard,
                    *nodes,
                    &net.inter_node(),
                );
                intra_rs + inter + intra_ag
            }
            _ => self.node_time(Collective::AllReduce, bytes, n, net),
        }
    }

    /// Effective algorithmic all-reduce bandwidth (`bytes / time`) at a
    /// payload size — what Fig. 15(c) sweeps.
    #[must_use]
    pub fn allreduce_bandwidth(&self, bytes: u64, n: usize, net: &NetworkSpec) -> f64 {
        let t = self.allreduce_time(bytes, n, net);
        if t <= 0.0 {
            return 0.0;
        }
        bytes as f64 / t
    }
}

impl Default for CollectiveCostModel {
    /// Calibrated against RCCL-like behaviour: 2 µs per chunk step and a
    /// 2 MiB per-step half-saturation chunk (real all-reduce efficiency
    /// degrades steeply once per-rank chunks fall into the single-digit
    /// megabytes, which is what large TP degrees produce).
    fn default() -> Self {
        Self::new(2e-6, 2.0 * 1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twocs_sim::Engine;

    fn link() -> LinkSpec {
        LinkSpec::new(50e9, 5e-6, 1024.0 * 1024.0).unwrap()
    }

    fn net() -> NetworkSpec {
        NetworkSpec::new(
            link(),
            LinkSpec::new(25e9, 12e-6, 8.0 * 1024.0 * 1024.0).unwrap(),
            150e9,
            twocs_hw::PinMode::None,
        )
        .unwrap()
    }

    #[test]
    fn node_allreduce_near_peak_for_large_payloads() {
        let m = CollectiveCostModel::default();
        let bytes = 256 * 1024 * 1024;
        let bw = m.allreduce_bandwidth(bytes, 4, &net());
        assert!(bw > 0.9 * 150e9, "large AR bw {bw}");
    }

    #[test]
    fn node_allreduce_degrades_for_small_payloads() {
        // §4.3.5: small sizes do not saturate the network.
        let m = CollectiveCostModel::default();
        let small = m.allreduce_bandwidth(256 * 1024, 4, &net());
        let large = m.allreduce_bandwidth(256 * 1024 * 1024, 4, &net());
        assert!(small < large / 3.0, "small {small} vs large {large}");
    }

    #[test]
    fn allreduce_time_grows_with_participants_at_fixed_bytes() {
        let m = CollectiveCostModel::default();
        let bytes = 64 * 1024 * 1024;
        let t4 = m.allreduce_time(bytes, 4, &net());
        let t64 = m.allreduce_time(bytes, 64, &net());
        let t256 = m.allreduce_time(bytes, 256, &net());
        assert!(t4 < t64 && t64 < t256);
    }

    #[test]
    fn zero_and_single_rank_are_free() {
        let m = CollectiveCostModel::default();
        assert_eq!(m.allreduce_time(0, 8, &net()), 0.0);
        assert_eq!(m.allreduce_time(1024, 1, &net()), 0.0);
    }

    #[test]
    fn allgather_is_about_half_an_allreduce() {
        let m = CollectiveCostModel::default();
        let bytes = 128 * 1024 * 1024;
        let ar = m.node_time(Collective::AllReduce, bytes, 8, &net());
        let ag = m.node_time(Collective::AllGather, bytes, 8, &net());
        let ratio = ar / ag;
        assert!((1.7..=2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pin_mode_halves_allreduce_time() {
        let m = CollectiveCostModel::default();
        let bytes = 256 * 1024 * 1024;
        let base = m.allreduce_time(bytes, 8, &net());
        let pin = m.allreduce_time(bytes, 8, &net().with_pin_mode(twocs_hw::PinMode::InSwitch));
        let ratio = base / pin;
        assert!((1.8..=2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn link_model_matches_simulated_ring_schedule() {
        // The α–β link model must agree with discrete-event execution of
        // the actual transfer schedule.
        let m = CollectiveCostModel::new(link().latency(), 1024.0 * 1024.0);
        for n in [2usize, 4, 8] {
            let elements = 8 * 1024 * 1024; // 32 MiB of f32
            let schedule = Algorithm::Ring
                .schedule(Collective::AllReduce, n, elements)
                .unwrap();
            let (graph, _) = schedule.to_task_graph(4, &link());
            let sim = Engine::new().run(&graph).unwrap().makespan().as_secs_f64();
            let analytic = m.time_on_link(
                Collective::AllReduce,
                Algorithm::Ring,
                elements as u64 * 4,
                n,
                &link(),
            );
            let err = (sim - analytic).abs() / sim;
            assert!(
                err < 0.05,
                "n={n}: sim {sim}, analytic {analytic}, err {err}"
            );
        }
    }

    #[test]
    fn tree_beats_ring_for_tiny_messages_on_many_ranks() {
        let m = CollectiveCostModel::default();
        let bytes = 16 * 1024;
        let n = 64;
        let ring = m.time_on_link(Collective::AllReduce, Algorithm::Ring, bytes, n, &link());
        let tree = m.time_on_link(Collective::AllReduce, Algorithm::Tree, bytes, n, &link());
        assert!(tree < ring, "tree {tree} vs ring {ring}");
    }

    #[test]
    fn ring_beats_tree_for_large_messages() {
        let m = CollectiveCostModel::default();
        let bytes = 512 * 1024 * 1024;
        let n = 16;
        let ring = m.time_on_link(Collective::AllReduce, Algorithm::Ring, bytes, n, &link());
        let tree = m.time_on_link(Collective::AllReduce, Algorithm::Tree, bytes, n, &link());
        assert!(ring < tree, "ring {ring} vs tree {tree}");
    }

    #[test]
    fn halving_doubling_beats_ring_on_latency() {
        let m = CollectiveCostModel::default();
        let bytes = 1024 * 1024;
        let n = 64;
        let ring = m.time_on_link(Collective::AllReduce, Algorithm::Ring, bytes, n, &link());
        let hd = m.time_on_link(
            Collective::AllReduce,
            Algorithm::HalvingDoubling,
            bytes,
            n,
            &link(),
        );
        assert!(hd < ring, "hd {hd} vs ring {ring}");
    }

    #[test]
    fn hierarchical_allreduce_slower_than_single_node() {
        let m = CollectiveCostModel::default();
        let bytes = 256 * 1024 * 1024;
        let flat = Topology::FullyConnected {
            devices: 16,
            link: link(),
        };
        let multi = Topology::Hierarchical {
            nodes: 4,
            node_size: 4,
            intra: link(),
            inter: LinkSpec::new(12.5e9, 12e-6, 8.0 * 1024.0 * 1024.0).unwrap(),
        };
        let t_flat = m.allreduce_time_on_topology(bytes, &flat, &net());
        let t_multi = m.allreduce_time_on_topology(bytes, &multi, &net());
        assert!(
            t_multi > 1.5 * t_flat,
            "cross-node AR should pay the slow links: {t_multi} vs {t_flat}"
        );
    }

    #[test]
    fn hierarchical_time_grows_with_node_count() {
        let m = CollectiveCostModel::default();
        let bytes = 128 * 1024 * 1024;
        let inter = LinkSpec::new(12.5e9, 12e-6, 8.0 * 1024.0 * 1024.0).unwrap();
        let t = |nodes: usize| {
            m.allreduce_time_on_topology(
                bytes,
                &Topology::Hierarchical {
                    nodes,
                    node_size: 4,
                    intra: link(),
                    inter,
                },
                &net(),
            )
        };
        assert!(t(2) < t(8));
        assert!(t(8) < t(32));
    }

    #[test]
    fn single_node_topology_matches_node_time() {
        let m = CollectiveCostModel::default();
        let bytes = 64 * 1024 * 1024;
        let flat = Topology::FullyConnected {
            devices: 8,
            link: link(),
        };
        let a = m.allreduce_time_on_topology(bytes, &flat, &net());
        let b = m.allreduce_time(bytes, 8, &net());
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn direct_allreduce_is_one_step_not_ring_chunking() {
        // Regression: Direct used to be priced identically to Ring
        // (`2·(n-1)` steps with ring chunking). It is one full-payload
        // exchange plus a local reduce.
        assert_eq!(
            CollectiveCostModel::steps(Algorithm::Direct, Collective::AllReduce, 8),
            1
        );
        assert_ne!(
            CollectiveCostModel::steps(Algorithm::Direct, Collective::AllReduce, 8),
            CollectiveCostModel::steps(Algorithm::Ring, Collective::AllReduce, 8),
        );
        assert_ne!(
            CollectiveCostModel::steps(Algorithm::Direct, Collective::AllReduce, 8),
            CollectiveCostModel::steps(Algorithm::Tree, Collective::AllReduce, 8),
        );
        assert_eq!(
            CollectiveCostModel::steps(Algorithm::Direct, Collective::AllReduce, 1),
            0
        );
    }

    #[test]
    fn direct_allreduce_is_latency_dominated_at_small_n() {
        // Tiny payloads on few ranks: one α beats ring's 2·(n-1) α and
        // tree's 2·log₂n α.
        let m = CollectiveCostModel::default();
        let bytes = 16 * 1024;
        let n = 4;
        let direct = m.time_on_link(Collective::AllReduce, Algorithm::Direct, bytes, n, &link());
        let ring = m.time_on_link(Collective::AllReduce, Algorithm::Ring, bytes, n, &link());
        let tree = m.time_on_link(Collective::AllReduce, Algorithm::Tree, bytes, n, &link());
        assert!(direct < tree, "direct {direct} vs tree {tree}");
        assert!(direct < ring, "direct {direct} vs ring {ring}");
    }

    #[test]
    fn direct_allreduce_pays_full_volume_at_scale() {
        // Large payloads on many ranks: (n-1)·S through every link loses
        // badly to ring's ~2·S.
        let m = CollectiveCostModel::default();
        let bytes = 512 * 1024 * 1024;
        let n = 16;
        let direct = m.time_on_link(Collective::AllReduce, Algorithm::Direct, bytes, n, &link());
        let ring = m.time_on_link(Collective::AllReduce, Algorithm::Ring, bytes, n, &link());
        assert!(
            direct > 3.0 * ring,
            "direct {direct} should pay ~(n-1)/2x ring's volume, ring {ring}"
        );
    }

    #[test]
    fn steps_formulas() {
        assert_eq!(
            CollectiveCostModel::steps(Algorithm::Ring, Collective::AllReduce, 8),
            14
        );
        assert_eq!(
            CollectiveCostModel::steps(Algorithm::HalvingDoubling, Collective::AllReduce, 8),
            6
        );
        assert_eq!(
            CollectiveCostModel::steps(Algorithm::Ring, Collective::AllGather, 8),
            7
        );
        assert_eq!(
            CollectiveCostModel::steps(Algorithm::Tree, Collective::Broadcast, 8),
            3
        );
        assert_eq!(
            CollectiveCostModel::steps(Algorithm::Ring, Collective::AllReduce, 1),
            0
        );
    }
}
