//! Functional execution of schedules over real buffers.
//!
//! The data plane is the substrate's proof of correctness: it executes a
//! [`CommSchedule`] step by step over per-rank `Vec<f32>` buffers, exactly
//! as a real collective library moves and reduces chunks. Bulk-synchronous
//! semantics: all sends of a step read the *pre-step* state, then all
//! writes land (matching the simulator's step barriers).

use crate::algorithm::{Algorithm, Collective};
use crate::error::CollectiveError;
use crate::schedule::{CommSchedule, TransferOp};

/// Execute `schedule` over the given per-rank buffers, in place.
///
/// # Errors
/// Returns [`CollectiveError::MismatchedBuffers`] if the buffer count or
/// lengths disagree with the schedule.
pub fn execute(schedule: &CommSchedule, buffers: &mut [Vec<f32>]) -> Result<(), CollectiveError> {
    if buffers.len() != schedule.participants() {
        return Err(CollectiveError::MismatchedBuffers {
            detail: format!(
                "schedule expects {} ranks, got {} buffers",
                schedule.participants(),
                buffers.len()
            ),
        });
    }
    for (i, b) in buffers.iter().enumerate() {
        if b.len() != schedule.elements() {
            return Err(CollectiveError::MismatchedBuffers {
                detail: format!(
                    "rank {i} buffer has {} elements, schedule expects {}",
                    b.len(),
                    schedule.elements()
                ),
            });
        }
    }

    for step in schedule.steps() {
        // Stage payloads from the pre-step state...
        let staged: Vec<Vec<f32>> = step
            .transfers
            .iter()
            .map(|t| buffers[t.src][t.start..t.end].to_vec())
            .collect();
        // ...then land all writes.
        for (t, payload) in step.transfers.iter().zip(staged) {
            let dst = &mut buffers[t.dst][t.dst_start..t.dst_start + payload.len()];
            match t.op {
                TransferOp::Reduce => {
                    for (d, s) in dst.iter_mut().zip(&payload) {
                        *d += s;
                    }
                }
                TransferOp::Copy => dst.copy_from_slice(&payload),
            }
        }
    }
    Ok(())
}

/// Run an all-reduce over `inputs` with the given algorithm and return the
/// per-rank results.
///
/// # Errors
/// Propagates schedule-construction errors (participant count, power-of-two
/// requirements) and buffer mismatches.
pub fn run_allreduce(
    algorithm: Algorithm,
    inputs: &[Vec<f32>],
) -> Result<Vec<Vec<f32>>, CollectiveError> {
    let n = inputs.len();
    let elements = inputs.first().map_or(0, Vec::len);
    let schedule = algorithm.schedule(Collective::AllReduce, n, elements)?;
    let mut buffers = inputs.to_vec();
    execute(&schedule, &mut buffers)?;
    Ok(buffers)
}

/// Run a broadcast from rank 0 and return the per-rank results.
///
/// # Errors
/// Propagates schedule-construction errors and buffer mismatches.
pub fn run_broadcast(inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, CollectiveError> {
    let n = inputs.len();
    let elements = inputs.first().map_or(0, Vec::len);
    let schedule = Algorithm::Tree.schedule(Collective::Broadcast, n, elements)?;
    let mut buffers = inputs.to_vec();
    execute(&schedule, &mut buffers)?;
    Ok(buffers)
}

/// Run an all-to-all exchange. `inputs[r]` chunk `d` is the payload rank
/// `r` addresses to rank `d`; on return, `outputs[d]` chunk `r` holds it.
///
/// # Errors
/// Propagates schedule-construction errors and buffer mismatches.
pub fn run_all_to_all(inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, CollectiveError> {
    let n = inputs.len();
    let elements = inputs.first().map_or(0, Vec::len);
    let schedule = Algorithm::Direct.schedule(Collective::AllToAll, n, elements)?;
    let mut buffers = inputs.to_vec();
    execute(&schedule, &mut buffers)?;
    // Local chunk: rank r keeps its own chunk r in place (no transfer).
    Ok(buffers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_inputs(n: usize, elements: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|r| (0..elements).map(|i| (r * elements + i) as f32).collect())
            .collect()
    }

    fn expected_sum(inputs: &[Vec<f32>]) -> Vec<f32> {
        let mut out = vec![0.0; inputs[0].len()];
        for buf in inputs {
            for (o, v) in out.iter_mut().zip(buf) {
                *o += v;
            }
        }
        out
    }

    #[test]
    fn ring_allreduce_sums_everything() {
        for n in [2usize, 3, 4, 5, 8] {
            let inputs = ramp_inputs(n, 12);
            let expect = expected_sum(&inputs);
            let outputs = run_allreduce(Algorithm::Ring, &inputs).unwrap();
            for (r, out) in outputs.iter().enumerate() {
                assert_eq!(out, &expect, "rank {r} of {n} diverged");
            }
        }
    }

    #[test]
    fn ring_allreduce_with_non_divisible_lengths() {
        for n in [3usize, 4, 7] {
            for elements in [1usize, 2, 5, 13] {
                let inputs = ramp_inputs(n, elements);
                let expect = expected_sum(&inputs);
                let outputs = run_allreduce(Algorithm::Ring, &inputs).unwrap();
                for out in &outputs {
                    assert_eq!(out, &expect, "n={n} elements={elements}");
                }
            }
        }
    }

    #[test]
    fn tree_allreduce_sums_everything() {
        for n in [2usize, 3, 5, 8, 9] {
            let inputs = ramp_inputs(n, 10);
            let expect = expected_sum(&inputs);
            let outputs = run_allreduce(Algorithm::Tree, &inputs).unwrap();
            for out in &outputs {
                assert_eq!(out, &expect, "n={n}");
            }
        }
    }

    #[test]
    fn halving_doubling_matches_ring() {
        for n in [2usize, 4, 8, 16] {
            let inputs = ramp_inputs(n, 32);
            let ring = run_allreduce(Algorithm::Ring, &inputs).unwrap();
            let hd = run_allreduce(Algorithm::HalvingDoubling, &inputs).unwrap();
            assert_eq!(ring, hd, "n={n}");
        }
    }

    #[test]
    fn broadcast_replicates_root() {
        let mut inputs = ramp_inputs(8, 16);
        let root = inputs[0].clone();
        for b in inputs.iter_mut().skip(1) {
            b.fill(-1.0);
        }
        let outputs = run_broadcast(&inputs).unwrap();
        for out in &outputs {
            assert_eq!(out, &root);
        }
    }

    #[test]
    fn all_to_all_transposes_chunks() {
        let n = 4;
        let elements = 8; // 2 per chunk
                          // inputs[r] chunk d filled with value r*10 + d.
        let chunks = CommSchedule::chunk_ranges(elements, n);
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| {
                let mut v = vec![0.0; elements];
                for (d, &(s, e)) in chunks.iter().enumerate() {
                    v[s..e].fill((r * 10 + d) as f32);
                }
                v
            })
            .collect();
        let outputs = run_all_to_all(&inputs).unwrap();
        for (d, out) in outputs.iter().enumerate() {
            for (r, &(s, e)) in chunks.iter().enumerate() {
                // outputs[d] chunk r == inputs[r] chunk d == r*10 + d.
                for &v in &out[s..e] {
                    assert_eq!(v, (r * 10 + d) as f32, "dst {d} chunk {r}");
                }
            }
        }
    }

    #[test]
    fn multi_ring_allreduce_sums_everything() {
        use crate::algorithm::multi_ring_allreduce;
        for n in [2usize, 4, 8] {
            for rings in [1usize, 2, 3] {
                let inputs = ramp_inputs(n, 24);
                let expect = expected_sum(&inputs);
                let schedule = multi_ring_allreduce(n, 24, rings);
                let mut buffers = inputs.clone();
                execute(&schedule, &mut buffers).unwrap();
                for (r, out) in buffers.iter().enumerate() {
                    assert_eq!(out, &expect, "n={n} rings={rings} rank {r}");
                }
            }
        }
    }

    #[test]
    fn two_rings_halve_simulated_time_on_fully_connected_node() {
        use crate::algorithm::multi_ring_allreduce;
        use twocs_hw::network::LinkSpec;
        use twocs_sim::Engine;
        let link = LinkSpec::new(50e9, 0.0, 0.0).unwrap();
        let elements = 4 << 20;
        let single = multi_ring_allreduce(4, elements, 1);
        let dual = multi_ring_allreduce(4, elements, 2);
        let run = |s: &crate::schedule::CommSchedule| {
            let (g, _) = s.to_task_graph(4, &link);
            Engine::new().run(&g).unwrap().makespan().as_secs_f64()
        };
        let t1 = run(&single);
        let t2 = run(&dual);
        let speedup = t1 / t2;
        assert!(
            (1.8..=2.1).contains(&speedup),
            "two disjoint rings should ~double bandwidth: {speedup}"
        );
    }

    #[test]
    fn mismatched_buffers_error() {
        let s = Algorithm::Ring
            .schedule(Collective::AllReduce, 4, 8)
            .unwrap();
        let mut bad = vec![vec![0.0f32; 8]; 3];
        assert!(execute(&s, &mut bad).is_err());
        let mut bad_len = vec![vec![0.0f32; 7]; 4];
        assert!(execute(&s, &mut bad_len).is_err());
    }
}
