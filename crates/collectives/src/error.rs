//! Error type for collective construction and execution.

use std::error::Error;
use std::fmt;

/// Error produced when building or executing a collective.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CollectiveError {
    /// Fewer than two participants.
    TooFewParticipants {
        /// The requested participant count.
        participants: usize,
    },
    /// An algorithm requires a power-of-two participant count.
    RequiresPowerOfTwo {
        /// The algorithm name.
        algorithm: &'static str,
        /// The requested participant count.
        participants: usize,
    },
    /// Data-plane buffers disagree in length or count.
    MismatchedBuffers {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveError::TooFewParticipants { participants } => {
                write!(
                    f,
                    "collectives need at least 2 participants, got {participants}"
                )
            }
            CollectiveError::RequiresPowerOfTwo {
                algorithm,
                participants,
            } => write!(
                f,
                "{algorithm} requires a power-of-two participant count, got {participants}"
            ),
            CollectiveError::MismatchedBuffers { detail } => {
                write!(f, "mismatched data-plane buffers: {detail}")
            }
        }
    }
}

impl Error for CollectiveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CollectiveError::RequiresPowerOfTwo {
            algorithm: "halving-doubling",
            participants: 6,
        };
        assert!(e.to_string().contains("power-of-two"));
        assert!(e.to_string().contains('6'));
    }
}
