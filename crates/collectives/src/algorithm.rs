//! Collective kinds and algorithm implementations.
//!
//! Each algorithm produces a [`CommSchedule`]: ring (bandwidth-optimal,
//! what RCCL uses on the paper's node and what the paper's 150 GB/s peak
//! refers to), binomial tree (latency-optimal for small payloads), and
//! recursive halving-doubling (fewer steps than ring at equal traffic,
//! power-of-two ranks only).

use crate::error::CollectiveError;
use crate::schedule::{ChunkTransfer, CommSchedule, CommStep, TransferOp};

/// The collective operation being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Collective {
    /// Reduce everyone's buffer and give everyone the result
    /// (tensor-parallel activations, data-parallel gradients).
    AllReduce,
    /// Reduce, leaving each rank with one shard (ZeRO-style).
    ReduceScatter,
    /// Concatenate everyone's shard on every rank.
    AllGather,
    /// Personalized exchange (expert parallelism in MoE models, §6.1.1).
    AllToAll,
    /// One rank's buffer to everyone.
    Broadcast,
}

impl Collective {
    /// Canonical lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Collective::AllReduce => "all_reduce",
            Collective::ReduceScatter => "reduce_scatter",
            Collective::AllGather => "all_gather",
            Collective::AllToAll => "all_to_all",
            Collective::Broadcast => "broadcast",
        }
    }

    /// Bytes each device must send for a payload of `bytes`, under the
    /// bandwidth-optimal algorithm for `n` participants. These are the
    /// standard traffic lower bounds the data plane verifies.
    #[must_use]
    pub fn bytes_per_device(self, bytes: u64, n: usize) -> f64 {
        let s = bytes as f64;
        let n_f = n as f64;
        match self {
            Collective::AllReduce => 2.0 * (n_f - 1.0) / n_f * s,
            Collective::ReduceScatter | Collective::AllGather | Collective::AllToAll => {
                (n_f - 1.0) / n_f * s
            }
            // Tree broadcast: interior ranks forward once; amortized ~s.
            Collective::Broadcast => s,
        }
    }
}

/// The schedule-generation algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Algorithm {
    /// Chunked ring: bandwidth-optimal, `O(N)` steps.
    #[default]
    Ring,
    /// Binomial tree: `O(log N)` steps but full payload per step.
    Tree,
    /// Recursive halving/doubling: `O(log N)` steps at ring traffic;
    /// requires power-of-two participants.
    HalvingDoubling,
    /// Direct pairwise exchange (all-to-all only).
    Direct,
}

impl Algorithm {
    /// Canonical lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Ring => "ring",
            Algorithm::Tree => "tree",
            Algorithm::HalvingDoubling => "halving_doubling",
            Algorithm::Direct => "direct",
        }
    }

    /// Build the schedule for `collective` over `participants` ranks and a
    /// logical buffer of `elements` elements.
    ///
    /// # Errors
    /// * [`CollectiveError::TooFewParticipants`] for fewer than 2 ranks.
    /// * [`CollectiveError::RequiresPowerOfTwo`] for halving-doubling on a
    ///   non-power-of-two rank count.
    /// * [`CollectiveError::MismatchedBuffers`] if the
    ///   (collective, algorithm) pair is not implemented.
    pub fn schedule(
        self,
        collective: Collective,
        participants: usize,
        elements: usize,
    ) -> Result<CommSchedule, CollectiveError> {
        if participants < 2 {
            return Err(CollectiveError::TooFewParticipants { participants });
        }
        match (collective, self) {
            (Collective::AllReduce, Algorithm::Ring) => Ok(ring_allreduce(participants, elements)),
            (Collective::AllReduce, Algorithm::Tree) => Ok(tree_allreduce(participants, elements)),
            (Collective::AllReduce, Algorithm::HalvingDoubling) => {
                if !participants.is_power_of_two() {
                    return Err(CollectiveError::RequiresPowerOfTwo {
                        algorithm: "halving-doubling",
                        participants,
                    });
                }
                Ok(halving_doubling_allreduce(participants, elements))
            }
            (Collective::ReduceScatter, Algorithm::Ring) => {
                Ok(ring_reduce_scatter(participants, elements))
            }
            (Collective::AllGather, Algorithm::Ring) => Ok(ring_all_gather(participants, elements)),
            (Collective::AllToAll, Algorithm::Direct | Algorithm::Ring) => {
                Ok(direct_all_to_all(participants, elements))
            }
            (Collective::Broadcast, Algorithm::Tree | Algorithm::Ring) => {
                Ok(tree_broadcast(participants, elements))
            }
            (c, a) => Err(CollectiveError::MismatchedBuffers {
                detail: format!(
                    "{} is not implemented with the {} algorithm",
                    c.name(),
                    a.name()
                ),
            }),
        }
    }
}

fn xfer(src: usize, dst: usize, (start, end): (usize, usize), op: TransferOp) -> ChunkTransfer {
    ChunkTransfer {
        src,
        dst,
        start,
        end,
        dst_start: start,
        op,
    }
}

/// Ring reduce-scatter: after `N-1` steps, rank `d` holds the fully reduced
/// chunk `(d + 1) % N`.
fn ring_reduce_scatter(n: usize, elements: usize) -> CommSchedule {
    let chunks = CommSchedule::chunk_ranges(elements, n);
    let mut steps = Vec::with_capacity(n - 1);
    for s in 0..n - 1 {
        let mut transfers = Vec::with_capacity(n);
        for d in 0..n {
            let chunk = (d + n - s) % n;
            let range = chunks[chunk];
            if range.1 > range.0 {
                transfers.push(xfer(d, (d + 1) % n, range, TransferOp::Reduce));
            }
        }
        steps.push(CommStep { transfers });
    }
    CommSchedule::new(n, elements, steps)
}

/// Ring all-gather: rank `d` starts owning chunk `(d + 1) % N` (matching
/// what ring reduce-scatter leaves behind) and after `N-1` steps everyone
/// owns everything.
fn ring_all_gather(n: usize, elements: usize) -> CommSchedule {
    let chunks = CommSchedule::chunk_ranges(elements, n);
    let mut steps = Vec::with_capacity(n - 1);
    for s in 0..n - 1 {
        let mut transfers = Vec::with_capacity(n);
        for d in 0..n {
            let chunk = (d + 1 + n - s) % n;
            let range = chunks[chunk];
            if range.1 > range.0 {
                transfers.push(xfer(d, (d + 1) % n, range, TransferOp::Copy));
            }
        }
        steps.push(CommStep { transfers });
    }
    CommSchedule::new(n, elements, steps)
}

/// Bandwidth-optimal ring all-reduce: reduce-scatter then all-gather,
/// `2 (N-1)` steps moving `S/N` per device per step.
fn ring_allreduce(n: usize, elements: usize) -> CommSchedule {
    let rs = ring_reduce_scatter(n, elements);
    let ag = ring_all_gather(n, elements);
    let mut steps = rs.steps().to_vec();
    steps.extend(ag.steps().iter().cloned());
    CommSchedule::new(n, elements, steps)
}

/// Binomial-tree reduce to rank 0, then binomial broadcast.
fn tree_allreduce(n: usize, elements: usize) -> CommSchedule {
    let full = (0, elements);
    let mut steps = Vec::new();
    // Reduce up.
    let mut gap = 1;
    while gap < n {
        let mut transfers = Vec::new();
        let mut r = gap;
        while r < n {
            transfers.push(xfer(r, r - gap, full, TransferOp::Reduce));
            r += 2 * gap;
        }
        if !transfers.is_empty() {
            steps.push(CommStep { transfers });
        }
        gap *= 2;
    }
    // Broadcast down (reverse order).
    steps.extend(tree_broadcast(n, elements).steps().iter().cloned());
    CommSchedule::new(n, elements, steps)
}

/// Binomial-tree broadcast from rank 0.
fn tree_broadcast(n: usize, elements: usize) -> CommSchedule {
    let full = (0, elements);
    let mut gap = 1usize;
    while gap * 2 < n {
        gap *= 2;
    }
    let mut steps = Vec::new();
    while gap >= 1 {
        let mut transfers = Vec::new();
        let mut r = 0;
        while r + gap < n {
            if r % (2 * gap) == 0 {
                transfers.push(xfer(r, r + gap, full, TransferOp::Copy));
            }
            r += 2 * gap;
        }
        if !transfers.is_empty() {
            steps.push(CommStep { transfers });
        }
        if gap == 1 {
            break;
        }
        gap /= 2;
    }
    CommSchedule::new(n, elements, steps)
}

/// Recursive halving (reduce-scatter) + recursive doubling (all-gather).
/// Power-of-two ranks only.
fn halving_doubling_allreduce(n: usize, elements: usize) -> CommSchedule {
    debug_assert!(n.is_power_of_two());
    let mut steps = Vec::new();
    // seg[r] = range of the buffer rank r is still responsible for.
    let mut seg = vec![(0usize, elements); n];
    let mut seg_history = Vec::new();
    let mut d = n / 2;
    while d >= 1 {
        seg_history.push(seg.clone());
        let mut transfers = Vec::new();
        for r in 0..n {
            let p = r ^ d;
            if p > r {
                let (s, e) = seg[r];
                let mid = s + (e - s) / 2;
                // Lower rank keeps the lower half.
                if e > mid {
                    transfers.push(xfer(r, p, (mid, e), TransferOp::Reduce));
                }
                if mid > s {
                    transfers.push(xfer(p, r, (s, mid), TransferOp::Reduce));
                }
                seg[r] = (s, mid);
                seg[p] = (mid, e);
            }
        }
        steps.push(CommStep { transfers });
        d /= 2;
    }
    // Doubling phase: replay in reverse, exchanging owned segments.
    let mut d = 1;
    for prev_seg in seg_history.iter().rev() {
        let mut transfers = Vec::new();
        for r in 0..n {
            let p = r ^ d;
            if p > r {
                let (rs, re) = seg[r];
                let (ps, pe) = seg[p];
                if re > rs {
                    transfers.push(xfer(r, p, (rs, re), TransferOp::Copy));
                }
                if pe > ps {
                    transfers.push(xfer(p, r, (ps, pe), TransferOp::Copy));
                }
            }
        }
        steps.push(CommStep { transfers });
        seg = prev_seg.clone();
        d *= 2;
    }
    CommSchedule::new(n, elements, steps)
}

/// Multi-ring all-reduce: split the payload into `rings` shards and run
/// an independent ring all-reduce per shard over *rotated* ring orders
/// (ring `k` steps from rank `r` to rank `(r + k + 1) mod N` ... in
/// practice: ring 0 ascending, ring 1 descending, further rings rotated).
/// On a fully-connected node the rings use disjoint directed links, so the
/// shards move concurrently — this is how the paper's 4×MI210 node turns
/// 100 GB/s links into 150 GB/s of ring-all-reduce bandwidth.
///
/// # Panics
/// Panics if `rings` is zero.
#[must_use]
pub fn multi_ring_allreduce(n: usize, elements: usize, rings: usize) -> CommSchedule {
    assert!(rings > 0, "rings must be non-zero");
    let shards = CommSchedule::chunk_ranges(elements, rings);
    // Per-ring rank permutations: ring 0 identity, ring 1 reversed, ring k
    // strided, guaranteeing distinct successor maps for small ring counts.
    let perm = |ring: usize, r: usize| -> usize {
        match ring % 2 {
            0 => (r + ring / 2) % n,
            _ => (n - 1 - r + ring / 2) % n,
        }
    };
    let mut merged: Vec<CommStep> = Vec::new();
    for (ring, &(start, end)) in shards.iter().enumerate() {
        let len = end - start;
        if len == 0 {
            continue;
        }
        let base = ring_allreduce(n, len);
        for (si, step) in base.steps().iter().enumerate() {
            if merged.len() <= si {
                merged.push(CommStep::default());
            }
            for t in &step.transfers {
                merged[si].transfers.push(ChunkTransfer {
                    src: perm(ring, t.src),
                    dst: perm(ring, t.dst),
                    start: t.start + start,
                    end: t.end + start,
                    dst_start: t.dst_start + start,
                    op: t.op,
                });
            }
        }
    }
    CommSchedule::new(n, elements, merged)
}

/// Direct pairwise all-to-all: rank `r` sends its chunk for rank `d` to
/// rank `d`, which stores it in chunk slot `r`. All transfers form one
/// bulk-synchronous step (each payload is staged from the pre-exchange
/// buffer; per-device sends still serialize on the sender's comm stream
/// when simulated).
fn direct_all_to_all(n: usize, elements: usize) -> CommSchedule {
    let chunks = CommSchedule::chunk_ranges(elements, n);
    let mut transfers = Vec::with_capacity(n * (n - 1));
    for s in 1..n {
        for r in 0..n {
            let dst = (r + s) % n;
            let range = chunks[dst];
            if range.1 > range.0 {
                transfers.push(ChunkTransfer {
                    src: r,
                    dst,
                    start: range.0,
                    end: range.1,
                    dst_start: chunks[r].0,
                    op: TransferOp::Copy,
                });
            }
        }
    }
    CommSchedule::new(n, elements, vec![CommStep { transfers }])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_allreduce_traffic_matches_formula() {
        for n in [2usize, 3, 4, 8, 16] {
            let elements = 16 * n; // divisible for exactness
            let s = Algorithm::Ring
                .schedule(Collective::AllReduce, n, elements)
                .unwrap();
            let expected = Collective::AllReduce.bytes_per_device(elements as u64, n);
            for r in 0..n {
                assert_eq!(
                    s.elements_sent_by(r) as f64,
                    expected,
                    "rank {r} of {n} sent wrong volume"
                );
            }
            assert_eq!(s.steps().len(), 2 * (n - 1));
        }
    }

    #[test]
    fn halving_doubling_traffic_matches_ring() {
        for n in [2usize, 4, 8, 16] {
            let elements = 16 * n;
            let hd = Algorithm::HalvingDoubling
                .schedule(Collective::AllReduce, n, elements)
                .unwrap();
            let expected = Collective::AllReduce.bytes_per_device(elements as u64, n);
            for r in 0..n {
                assert_eq!(hd.elements_sent_by(r) as f64, expected);
            }
            // log-depth: 2*log2(n) steps.
            assert_eq!(hd.steps().len(), 2 * n.trailing_zeros() as usize);
        }
    }

    #[test]
    fn halving_doubling_rejects_non_power_of_two() {
        let e = Algorithm::HalvingDoubling.schedule(Collective::AllReduce, 6, 64);
        assert!(matches!(e, Err(CollectiveError::RequiresPowerOfTwo { .. })));
    }

    #[test]
    fn tree_allreduce_is_log_depth() {
        let s = Algorithm::Tree
            .schedule(Collective::AllReduce, 8, 64)
            .unwrap();
        assert_eq!(s.steps().len(), 6); // 3 reduce + 3 broadcast
    }

    #[test]
    fn tree_moves_more_bytes_than_ring_for_large_n() {
        let n = 16;
        let elements = 16 * n;
        let ring = Algorithm::Ring
            .schedule(Collective::AllReduce, n, elements)
            .unwrap();
        let tree = Algorithm::Tree
            .schedule(Collective::AllReduce, n, elements)
            .unwrap();
        // Total wire traffic: ring 2(N-1)/N*S*N ≈ 2(N-1)S, tree 2(N-1)S as
        // well in aggregate, but tree's *root* sends far more than a ring
        // rank; the bottleneck rank is what matters.
        let ring_max = (0..n).map(|r| ring.elements_sent_by(r)).max().unwrap();
        let tree_max = (0..n).map(|r| tree.elements_sent_by(r)).max().unwrap();
        assert!(tree_max > ring_max);
    }

    #[test]
    fn alltoall_traffic() {
        let n = 8;
        let elements = 8 * n;
        let s = Algorithm::Direct
            .schedule(Collective::AllToAll, n, elements)
            .unwrap();
        let expected = Collective::AllToAll.bytes_per_device(elements as u64, n);
        for r in 0..n {
            assert_eq!(s.elements_sent_by(r) as f64, expected);
        }
    }

    #[test]
    fn broadcast_reaches_everyone_in_log_steps() {
        let s = Algorithm::Tree
            .schedule(Collective::Broadcast, 16, 64)
            .unwrap();
        assert_eq!(s.steps().len(), 4);
    }

    #[test]
    fn too_few_participants() {
        let e = Algorithm::Ring.schedule(Collective::AllReduce, 1, 64);
        assert!(matches!(e, Err(CollectiveError::TooFewParticipants { .. })));
    }

    #[test]
    fn unsupported_combination_reports_clearly() {
        let e = Algorithm::HalvingDoubling.schedule(Collective::AllGather, 8, 64);
        assert!(e.is_err());
    }

    #[test]
    fn multi_ring_preserves_traffic_and_halves_steps_per_link() {
        let n = 4;
        let elements = 64 * n;
        let single = ring_allreduce(n, elements);
        let dual = multi_ring_allreduce(n, elements, 2);
        // Same total wire traffic...
        assert_eq!(
            single.total_elements_on_wire(),
            dual.total_elements_on_wire()
        );
        // ...but each step carries two transfers per rank over disjoint
        // directed links, so the per-step payload per link halves.
        let max_single: usize = single.steps()[0]
            .transfers
            .iter()
            .map(super::super::schedule::ChunkTransfer::len)
            .max()
            .unwrap();
        let max_dual: usize = dual.steps()[0]
            .transfers
            .iter()
            .map(super::super::schedule::ChunkTransfer::len)
            .max()
            .unwrap();
        assert_eq!(max_dual, max_single / 2);
    }

    #[test]
    fn multi_ring_uses_disjoint_directed_links() {
        use std::collections::HashSet;
        let dual = multi_ring_allreduce(4, 256, 2);
        for step in dual.steps() {
            let mut links = HashSet::new();
            for t in &step.transfers {
                assert!(
                    links.insert((t.src, t.dst)),
                    "link ({},{}) reused within one step",
                    t.src,
                    t.dst
                );
            }
        }
    }

    #[test]
    fn non_divisible_elements_still_schedule() {
        // 7 elements over 4 ranks: chunks of 2,2,2,1.
        let s = Algorithm::Ring
            .schedule(Collective::AllReduce, 4, 7)
            .unwrap();
        let total: usize = (0..4).map(|r| s.elements_sent_by(r)).sum();
        // Every chunk crosses the ring 2*(n-1) times in aggregate.
        assert_eq!(total, 7 * 2 * 3); // 2(N-1)/N * S * N = 2*3*7
    }
}
