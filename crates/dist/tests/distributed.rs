//! End-to-end tests for the distributed sweep fabric: a real TCP
//! coordinator with in-process workers, exercising the byte-identity
//! contract, full-window requeue on mid-sweep worker death, late joins,
//! the no-worker degrade path, heartbeat-vs-slow-chunk liveness, wire
//! byte accounting, and the version handshake.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use twocs_core::GridSweep;
use twocs_dist::coordinator::{Coordinator, CoordinatorConfig};
use twocs_dist::proto::{read_frame, write_frame, Message, PROTOCOL_VERSION};
use twocs_dist::worker::{run_worker, WorkerConfig};
use twocs_hw::DeviceSpec;

fn small_sweep() -> GridSweep {
    GridSweep {
        hs: vec![4096, 16_384],
        sls: vec![2048],
        tps: vec![16, 64],
        flop_vs_bw: vec![1.0, 4.0],
        ..GridSweep::default()
    }
}

fn bind(chunk_size: usize) -> Coordinator {
    Coordinator::bind(CoordinatorConfig {
        chunk_size,
        ..CoordinatorConfig::default()
    })
    .expect("bind ephemeral coordinator port")
}

fn spawn_worker(addr: String) -> std::thread::JoinHandle<Result<(), String>> {
    std::thread::spawn(move || run_worker(&WorkerConfig::new(addr, 1)).map(|_| ()))
}

/// The tentpole acceptance: a two-worker distributed run produces a CSV
/// byte-identical to the local `--jobs 2` run.
#[test]
fn two_worker_sweep_is_byte_identical_to_local() {
    let sweep = small_sweep();
    let device = DeviceSpec::mi210();
    let local = sweep.run(&device, 2).0.to_csv();

    let coordinator = bind(2);
    let addr = coordinator.local_addr().to_string();
    let workers: Vec<_> = (0..2).map(|_| spawn_worker(addr.clone())).collect();
    assert_eq!(
        coordinator.wait_for_workers(2, Duration::from_secs(10)),
        2,
        "both workers registered"
    );

    let (table, summary) = coordinator.run_sweep(&sweep, &device).expect("sweep runs");
    assert_eq!(table.to_csv(), local);
    assert_eq!(summary.points, sweep.points().len());
    assert!(summary.workers_seen >= 2);

    coordinator.shutdown();
    for w in workers {
        w.join().unwrap().expect("worker exits cleanly on Done");
    }
}

/// A raw protocol client that accepts a pipelined grant and silently
/// drops the connection while holding its **entire credit window**. The
/// coordinator must requeue every outstanding chunk — not just one —
/// and the output must still be byte-identical: the worker-kill
/// acceptance, sharpened for v4 pipelining.
#[test]
fn worker_death_mid_sweep_reassigns_its_full_window() {
    let sweep = small_sweep();
    let device = DeviceSpec::mi210();
    let local = sweep.run(&device, 1).0.to_csv();

    let coordinator = bind(2);
    let addr = coordinator.local_addr();

    // Victim: handshake, wait for the pushed grant, die holding the
    // whole window without completing (or heartbeating) anything.
    let victim = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).expect("victim connects");
        write_frame(
            &mut conn,
            &Message::Hello {
                version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        let (welcome, _) = read_frame(&mut conn).unwrap();
        let Message::Welcome { pipeline, .. } = welcome else {
            panic!("expected Welcome, got {welcome:?}");
        };
        let (grant, _) = read_frame(&mut conn).unwrap();
        let Message::Grant { leases, .. } = grant else {
            panic!("expected Grant, got {grant:?}");
        };
        assert!(
            leases.len() <= pipeline as usize,
            "grant never exceeds the advertised window"
        );
        drop(conn);
        leases.len() as u64
    });
    assert_eq!(coordinator.wait_for_workers(1, Duration::from_secs(10)), 1);

    let (table, summary) = coordinator.run_sweep(&sweep, &device).expect("sweep runs");
    let window = victim.join().unwrap();
    assert!(window >= 2, "victim held a pipelined window ({window})");
    assert_eq!(table.to_csv(), local, "byte-identical despite the death");
    assert!(
        summary.reassigned >= window,
        "the dead client's whole window was requeued (reassigned = {}, window = {window})",
        summary.reassigned
    );
}

/// With no workers at all, the coordinator degrades to local evaluation
/// and still matches the local run — the `--min-workers` timeout path.
#[test]
fn no_workers_degrades_to_local_evaluation() {
    let sweep = small_sweep();
    let device = DeviceSpec::mi210();
    let local = sweep.run(&device, 1).0.to_csv();

    let coordinator = bind(3);
    assert_eq!(
        coordinator.wait_for_workers(1, Duration::from_millis(100)),
        0
    );
    let (table, summary) = coordinator.run_sweep(&sweep, &device).expect("sweep runs");
    assert_eq!(table.to_csv(), local);
    assert_eq!(summary.workers_seen, 0);
    assert!(summary
        .per_worker
        .iter()
        .all(|&(id, _, _)| id == twocs_dist::LOCAL_WORKER));
}

/// A worker that joins mid-sweep pulls leases immediately. A raw
/// protocol client pins the sweep in flight by sitting on one lease, so
/// the late join deterministically lands mid-sweep; when the client
/// finally drops, its chunk is requeued and the late worker (not the
/// local drain — the fabric still has a connection) finishes the job.
#[test]
fn late_joining_worker_picks_up_chunks() {
    let sweep = small_sweep();
    let device = DeviceSpec::mi210();
    let local = sweep.run(&device, 1).0.to_csv();

    let coordinator = bind(1);
    let addr = coordinator.local_addr();

    // Lease-holder: accept the pushed grant and sit on it well past the
    // late worker's join, then die without completing it.
    let holder = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).expect("holder connects");
        write_frame(
            &mut conn,
            &Message::Hello {
                version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        let (welcome, _) = read_frame(&mut conn).unwrap();
        assert!(matches!(welcome, Message::Welcome { .. }));
        let (grant, _) = read_frame(&mut conn).unwrap();
        assert!(
            matches!(grant, Message::Grant { .. }),
            "expected Grant, got {grant:?}"
        );
        std::thread::sleep(Duration::from_millis(500));
        drop(conn);
    });
    assert_eq!(coordinator.wait_for_workers(1, Duration::from_secs(10)), 1);

    let submit = {
        let sweep = sweep.clone();
        let device = device.clone();
        std::thread::spawn(move || {
            let out = coordinator.run_sweep(&sweep, &device);
            (out, coordinator)
        })
    };
    // Join while the holder pins the sweep in flight.
    std::thread::sleep(Duration::from_millis(100));
    let worker = spawn_worker(addr.to_string());

    let (out, coordinator) = submit.join().unwrap();
    holder.join().unwrap();
    let (table, summary) = out.expect("sweep runs");
    assert_eq!(table.to_csv(), local);
    assert!(summary.workers_seen >= 2, "holder + late worker registered");
    assert!(
        summary.reassigned >= 1,
        "the holder's abandoned chunk was requeued"
    );
    let late_worker_chunks: u64 = summary
        .per_worker
        .iter()
        .filter(|&&(id, _, _)| id != twocs_dist::LOCAL_WORKER)
        .map(|&(_, chunks, _)| chunks)
        .sum();
    assert!(
        late_worker_chunks > 0,
        "the late worker evaluated chunks: {:?}",
        summary.per_worker
    );
    coordinator.shutdown();
    worker.join().unwrap().expect("late worker exits on Done");
}

/// A worker speaking the wrong protocol version is rejected at
/// handshake with a reason, and never affects the fabric.
#[test]
fn version_mismatch_is_rejected_at_handshake() {
    let coordinator = bind(4);
    let mut conn = TcpStream::connect(coordinator.local_addr()).expect("connect");
    write_frame(
        &mut conn,
        &Message::Hello {
            version: PROTOCOL_VERSION + 1,
        },
    )
    .unwrap();
    let (reply, _) = read_frame(&mut conn).unwrap();
    let Message::Reject { reason } = reply else {
        panic!("expected Reject, got {reply:?}");
    };
    assert!(
        reason.contains("version"),
        "reason names the mismatch: {reason}"
    );
    assert_eq!(coordinator.worker_count(), 0);
}

/// Back-to-back sweeps through one fabric stay deterministic: job ids
/// advance, results never bleed across jobs.
#[test]
fn consecutive_sweeps_on_one_fabric_are_independent() {
    let device = DeviceSpec::mi210();
    let coordinator = bind(2);
    let addr = coordinator.local_addr().to_string();
    let worker = spawn_worker(addr);
    assert_eq!(coordinator.wait_for_workers(1, Duration::from_secs(10)), 1);

    let first = small_sweep();
    let second = GridSweep {
        hs: vec![8192],
        sls: vec![4096],
        tps: vec![64],
        flop_vs_bw: vec![1.0, 2.0],
        ..GridSweep::default()
    };
    let (t1, _) = coordinator.run_sweep(&first, &device).expect("first sweep");
    let (t2, _) = coordinator
        .run_sweep(&second, &device)
        .expect("second sweep");
    assert_eq!(t1.to_csv(), first.run(&device, 1).0.to_csv());
    assert_eq!(t2.to_csv(), second.run(&device, 1).0.to_csv());

    coordinator.shutdown();
    worker.join().unwrap().expect("worker exits on Done");
}

/// The widened v2 protocol carries the new MoE/PP/SP axis fields and the
/// sweep workload end to end: a distributed run over an extended grid is
/// byte-identical to the local run, for training and decode alike.
#[test]
fn extended_axis_sweep_is_byte_identical_to_local() {
    use twocs_core::serialized::Method;
    use twocs_core::sweep::Workload;
    for workload in [Workload::Training, Workload::Decode] {
        let sweep = GridSweep {
            method: Method::Projection,
            experts: vec![1, 8],
            top_ks: vec![2],
            stages: vec![1, 4],
            micro_batches: vec![4],
            sps: vec![1, 2],
            workload,
            ..small_sweep()
        };
        let device = DeviceSpec::mi210();
        let local = sweep.run(&device, 2).0.to_csv();

        let coordinator = bind(2);
        let addr = coordinator.local_addr().to_string();
        let workers: Vec<_> = (0..2).map(|_| spawn_worker(addr.clone())).collect();
        assert_eq!(coordinator.wait_for_workers(2, Duration::from_secs(10)), 2);
        let (table, summary) = coordinator.run_sweep(&sweep, &device).expect("sweep runs");
        assert_eq!(table.to_csv(), local, "workload {workload}");
        assert_eq!(summary.points, sweep.points().len());
        coordinator.shutdown();
        for w in workers {
            w.join().unwrap().expect("worker exits cleanly on Done");
        }
        // The extended columns actually made it into the artifact.
        assert!(local.contains("experts"), "extended header present");
    }
}

/// A chunk that takes longer than the lease TTL must NOT be spuriously
/// reassigned: the worker's heartbeat thread keeps the whole window
/// alive while the eval loop grinds. (Before heartbeats were counted as
/// liveness this would duplicate work and inflate `reassigned`.)
#[test]
fn slow_chunk_outlives_lease_ttl_via_heartbeats() {
    let sweep = small_sweep();
    let device = DeviceSpec::mi210();
    let local = sweep.run(&device, 1).0.to_csv();

    // TTL 200 ms, every chunk takes ~500 ms: only heartbeats (told to
    // come every 50 ms) keep the leases from expiring.
    let coordinator = Coordinator::bind(CoordinatorConfig {
        chunk_size: 4,
        heartbeat: Duration::from_millis(50),
        lease_ttl: Duration::from_millis(200),
        ..CoordinatorConfig::default()
    })
    .expect("bind ephemeral coordinator port");
    let addr = coordinator.local_addr().to_string();
    let worker = std::thread::spawn(move || {
        let mut cfg = WorkerConfig::new(addr, 1);
        cfg.chunk_delay = Some(Duration::from_millis(500));
        run_worker(&cfg)
    });
    assert_eq!(coordinator.wait_for_workers(1, Duration::from_secs(10)), 1);

    let (table, summary) = coordinator.run_sweep(&sweep, &device).expect("sweep runs");
    assert_eq!(table.to_csv(), local);
    assert_eq!(
        summary.reassigned, 0,
        "slow-but-alive worker kept every lease: {summary}"
    );
    assert!(
        summary
            .per_worker
            .iter()
            .all(|&(id, _, _)| id != twocs_dist::LOCAL_WORKER),
        "no chunk fell back to the local drain: {:?}",
        summary.per_worker
    );

    coordinator.shutdown();
    worker.join().unwrap().expect("worker exits on Done");
}

/// Wire-byte accounting closes: after a clean shutdown, the worker's
/// reported `bytes_tx`/`bytes_rx` — which must include the heartbeat
/// thread's frames — mirror the coordinator's rx/tx totals exactly.
#[test]
fn worker_byte_accounting_matches_coordinator() {
    let sweep = small_sweep();
    let device = DeviceSpec::mi210();

    let coordinator = bind(2);
    let addr = coordinator.local_addr().to_string();
    let worker = std::thread::spawn(move || run_worker(&WorkerConfig::new(addr, 1)));
    assert_eq!(coordinator.wait_for_workers(1, Duration::from_secs(10)), 1);

    coordinator.run_sweep(&sweep, &device).expect("sweep runs");
    coordinator.shutdown();
    let report = worker.join().unwrap().expect("worker exits on Done");
    assert!(report.bytes_tx > 0 && report.bytes_rx > 0);
    assert!(report.chunks > 0, "the worker actually evaluated");

    // The driver may still be draining the worker's final frames; the
    // ledger must settle to exact equality, both directions.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (coord_tx, coord_rx) = coordinator.wire_totals();
        if coord_rx == report.bytes_tx && coord_tx == report.bytes_rx {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "byte ledgers never settled: worker tx/rx = {}/{}, coordinator tx/rx = {coord_tx}/{coord_rx}",
            report.bytes_tx,
            report.bytes_rx,
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The streaming delivery path: chunks flow to the submitter's callback
/// instead of coordinator memory, pre-completed (journal-resumed) chunks
/// are never re-evaluated, and stitching resumed + streamed chunks back
/// together reproduces the local CSV byte-for-byte.
#[test]
fn streaming_sweep_with_resume_set_matches_local() {
    use std::collections::{BTreeMap, BTreeSet};
    use twocs_core::eval_chunk;

    let sweep = small_sweep();
    let device = DeviceSpec::mi210();
    let local = sweep.run(&device, 1).0.to_csv();

    let chunk_size = 2usize;
    let index = sweep.index();
    let n_chunks = index.chunk_count(chunk_size) as u32;
    assert!(n_chunks >= 3, "grid large enough to resume mid-way");

    // "Journal-recovered" chunk: evaluated up front, passed as completed.
    let resumed: u32 = 1;
    let resumed_values = eval_chunk(
        &device,
        &index.chunk_points(resumed as usize, chunk_size),
        sweep.batch,
        sweep.method,
        sweep.workload,
    );
    let completed = BTreeSet::from([resumed]);

    let coordinator = bind(chunk_size);
    let addr = coordinator.local_addr().to_string();
    let worker = spawn_worker(addr);
    assert_eq!(coordinator.wait_for_workers(1, Duration::from_secs(10)), 1);

    let mut streamed: BTreeMap<u32, _> = BTreeMap::new();
    let summary = coordinator
        .run_sweep_streaming(
            &sweep,
            &device,
            chunk_size,
            &completed,
            &mut |chunk, values| {
                assert!(
                    streamed.insert(chunk, values).is_none(),
                    "chunk {chunk} delivered twice"
                );
                Ok(())
            },
        )
        .expect("streaming sweep runs");

    assert!(
        !streamed.contains_key(&resumed),
        "the resumed chunk was not re-evaluated"
    );
    assert_eq!(streamed.len() as u32, n_chunks - 1);
    assert_eq!(summary.points, sweep.points().len());

    // Stitch resumed + streamed chunks back into grid order and compare.
    streamed.insert(resumed, resumed_values);
    let results: Vec<_> = streamed.into_values().flatten().collect();
    let table = GridSweep::tabulate(&sweep.points(), &results);
    assert_eq!(table.to_csv(), local, "resume + stream is byte-identical");

    coordinator.shutdown();
    worker.join().unwrap().expect("worker exits on Done");
}
