//! Wire protocol between a sweep coordinator and its workers.
//!
//! Framing is a 4-byte little-endian payload length followed by the
//! payload; the payload is a 1-byte message tag followed by the message
//! fields. All integers are little-endian, floats travel as `f64::to_bits`
//! (so values merge back **bit-exact** — the basis of the byte-identical
//! CSV guarantee), and strings are a `u32` byte length plus UTF-8 bytes.
//!
//! The first exchange on every connection is a version handshake:
//! [`Message::Hello`] (worker → coordinator) answered by
//! [`Message::Welcome`] or [`Message::Reject`]. Everything after is
//! **coordinator-pushed**: the coordinator keeps each worker topped up
//! with a credit window of outstanding chunk leases ([`Message::Grant`],
//! the window size arrives in `Welcome`), the worker streams
//! [`Message::ChunkResult`] frames back as chunks finish, and
//! `Heartbeat` frames interleave from a side thread so the coordinator
//! can tell a slow worker from a dead one. There is no idle poll: a
//! worker with no work simply has nothing to read until the coordinator
//! pushes the next grant (v3's `Ready`/`Wait`/`Lease` pull cycle — one
//! network round-trip serialized in front of every chunk — is gone).
//!
//! Every encode/decode is exercised by a round-trip property test, and
//! decoding is strict: trailing bytes, truncated fields, unknown tags,
//! and over-limit frames are all `InvalidData` errors rather than
//! best-effort guesses.

use std::io::{self, IoSlice, Read, Write};

use twocs_core::serialized::Method;
use twocs_core::sweep::{GridPoint, GridSweep, Workload};

/// Protocol version; bumped on any incompatible wire change. A
/// coordinator rejects workers that greet with a different version, so a
/// stale binary fails loudly at handshake instead of corrupting a sweep.
/// v2 widened the lease with the sweep workload and the MoE/PP/SP axis
/// fields on every grid point. v3 added the whole-grid axis lists plus
/// the grid fingerprint to every lease, so a worker can rebuild the
/// sweep once and reuse its factored plan across chunks. v4 replaced the
/// worker-driven `Ready`/`Lease`/`Wait` pull cycle with coordinator-
/// pushed multi-lease [`Message::Grant`] frames and a credit window
/// advertised in [`Message::Welcome`], so communication overlaps
/// computation instead of serializing in front of it.
pub const PROTOCOL_VERSION: u32 = 4;

/// Upper bound on one frame's payload, defending both sides against a
/// corrupt or hostile peer declaring a multi-gigabyte length. Generous:
/// the largest legitimate frame (a grant window over a serve-capped
/// 4096-point grid) is under 256 KiB.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// The nine axis lists that define a sweep's grid, shipped with every
/// grant (a few hundred bytes even for a million-point grid — the point
/// counts multiply, the lists only add). Together with the grant's
/// `batch`/`method`/`workload` a worker can rebuild the full
/// [`GridSweep`] and amortize one whole-grid factored plan across every
/// chunk of the job, keyed by the grid fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxes {
    /// Hidden sizes.
    pub hs: Vec<u64>,
    /// Sequence lengths.
    pub sls: Vec<u64>,
    /// Tensor-parallel degrees.
    pub tps: Vec<u64>,
    /// Flop-vs-bw hardware-evolution ratios.
    pub flop_vs_bw: Vec<f64>,
    /// MoE expert counts.
    pub experts: Vec<u64>,
    /// Experts activated per token.
    pub top_ks: Vec<u64>,
    /// Pipeline stage counts.
    pub stages: Vec<u64>,
    /// Micro-batches per pipeline flush.
    pub micro_batches: Vec<u64>,
    /// Sequence-parallel degrees.
    pub sps: Vec<u64>,
}

impl SweepAxes {
    /// Capture a sweep's axis lists for the wire.
    #[must_use]
    pub fn from_sweep(sweep: &GridSweep) -> Self {
        Self {
            hs: sweep.hs.clone(),
            sls: sweep.sls.clone(),
            tps: sweep.tps.clone(),
            flop_vs_bw: sweep.flop_vs_bw.clone(),
            experts: sweep.experts.clone(),
            top_ks: sweep.top_ks.clone(),
            stages: sweep.stages.clone(),
            micro_batches: sweep.micro_batches.clone(),
            sps: sweep.sps.clone(),
        }
    }

    /// Rebuild the sweep these axes came from, completing it with the
    /// grant's sweep-level selectors.
    #[must_use]
    pub fn to_sweep(&self, batch: u64, method: Method, workload: Workload) -> GridSweep {
        GridSweep {
            hs: self.hs.clone(),
            sls: self.sls.clone(),
            tps: self.tps.clone(),
            flop_vs_bw: self.flop_vs_bw.clone(),
            experts: self.experts.clone(),
            top_ks: self.top_ks.clone(),
            stages: self.stages.clone(),
            micro_batches: self.micro_batches.clone(),
            sps: self.sps.clone(),
            batch,
            method,
            workload,
        }
    }
}

/// One chunk's worth of leased work inside a [`Message::Grant`]: the
/// chunk id plus its grid points in grid order. Job-level context
/// (device, axes, fingerprints) lives once on the grant, not per chunk —
/// a full credit window costs one frame and one copy of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkLease {
    /// Chunk id within the job.
    pub chunk: u32,
    /// The chunk's grid points, in grid order.
    pub points: Vec<GridPoint>,
}

/// One protocol message. See the module docs for the exchange sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → coordinator: version handshake opener.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Coordinator → worker: handshake accepted.
    Welcome {
        /// The coordinator's [`PROTOCOL_VERSION`] (equal to the worker's).
        version: u32,
        /// Coordinator-assigned worker id, used in logs and lease
        /// bookkeeping.
        worker_id: u64,
        /// How often the worker should send [`Message::Heartbeat`], in
        /// milliseconds. The coordinator treats ~3 missed beats as death.
        heartbeat_ms: u32,
        /// Credit window: how many chunk leases the coordinator keeps
        /// outstanding on this connection. The worker sizes its local
        /// work queue accordingly; `1` degenerates to the lockstep v3
        /// behavior (one chunk per network round-trip).
        pipeline: u32,
    },
    /// Coordinator → worker: handshake refused (version mismatch, shutdown).
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Coordinator → worker: a batch of chunk leases, pushed whenever the
    /// worker's outstanding window has room. Replaces v3's per-chunk
    /// `Ready` → `Lease` round-trip.
    Grant {
        /// Sweep job id (guards against results from a previous sweep).
        job: u64,
        /// Catalog name of the **base** device (per-point flop-vs-bw
        /// evolution happens worker-side, inside `eval_grid_point`).
        device: String,
        /// Fingerprint of the base device; the worker verifies its
        /// catalog copy matches before computing.
        device_fingerprint: u64,
        /// Sweep batch size.
        batch: u64,
        /// Serialized-fraction evaluation method.
        method: Method,
        /// Sweep workload (training, prefill, or decode).
        workload: Workload,
        /// The whole sweep's axis lists, for worker-side plan reuse.
        /// Boxed so the rare-but-wide grant payload doesn't inflate
        /// every [`Message`] on the stack.
        axes: Box<SweepAxes>,
        /// `GridSweep::fingerprint()` of the sweep the axes describe;
        /// the worker's plan-cache key (with the device fingerprint)
        /// and a consistency check on the rebuilt sweep.
        grid_fingerprint: u64,
        /// The granted chunks, one lease each. Never empty on the wire.
        leases: Vec<ChunkLease>,
    },
    /// Coordinator → worker: the fabric is shutting down; exit cleanly.
    Done,
    /// Worker → coordinator: one evaluated chunk. `values[i]` pairs with
    /// the lease's `points[i]`; `Err` carries a panic message for that
    /// point (rendered as `error` cells, same as a local run).
    ChunkResult {
        /// Job id copied from the grant.
        job: u64,
        /// Chunk id copied from the lease.
        chunk: u32,
        /// Per-point `(serialized_pct, overlap_pct)` or panic message.
        values: Vec<Result<(f64, f64), String>>,
    },
    /// Worker → coordinator: liveness signal while idle or mid-compute.
    Heartbeat,
    /// Worker → coordinator: cannot evaluate this job (e.g. the device
    /// is not in the worker's catalog). The coordinator requeues the
    /// worker's whole outstanding window and releases it.
    Refuse {
        /// Job id copied from the grant.
        job: u64,
        /// Chunk id of the lease that triggered the refusal.
        chunk: u32,
        /// Why the grant was refused.
        reason: String,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_REJECT: u8 = 3;
// Tags 4–6 (`Ready`/`Lease`/`Wait`) were retired with the v3 pull
// protocol and are not reused, so a stale peer's frames fail decoding
// loudly instead of aliasing into new meanings.
const TAG_DONE: u8 = 7;
const TAG_CHUNK_RESULT: u8 = 8;
const TAG_HEARTBEAT: u8 = 9;
const TAG_REFUSE: u8 = 10;
const TAG_GRANT: u8 = 11;

fn method_to_wire(m: Method) -> u8 {
    match m {
        Method::Simulation => 0,
        Method::Projection => 1,
    }
}

fn method_from_wire(b: u8) -> io::Result<Method> {
    match b {
        0 => Ok(Method::Simulation),
        1 => Ok(Method::Projection),
        other => Err(bad(format!("unknown method byte {other}"))),
    }
}

fn workload_to_wire(w: Workload) -> u8 {
    match w {
        Workload::Training => 0,
        Workload::Prefill => 1,
        Workload::Decode => 2,
    }
}

fn workload_from_wire(b: u8) -> io::Result<Workload> {
    match b {
        0 => Ok(Workload::Training),
        1 => Ok(Workload::Prefill),
        2 => Ok(Workload::Decode),
        other => Err(bad(format!("unknown workload byte {other}"))),
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---- encoding ----------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_u64_list(buf: &mut Vec<u8>, vs: &[u64]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_u64(buf, v);
    }
}

fn put_f64_list(buf: &mut Vec<u8>, vs: &[f64]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_f64(buf, v);
    }
}

fn put_axes(buf: &mut Vec<u8>, axes: &SweepAxes) {
    put_u64_list(buf, &axes.hs);
    put_u64_list(buf, &axes.sls);
    put_u64_list(buf, &axes.tps);
    put_f64_list(buf, &axes.flop_vs_bw);
    put_u64_list(buf, &axes.experts);
    put_u64_list(buf, &axes.top_ks);
    put_u64_list(buf, &axes.stages);
    put_u64_list(buf, &axes.micro_batches);
    put_u64_list(buf, &axes.sps);
}

fn put_points(buf: &mut Vec<u8>, points: &[GridPoint]) {
    put_u32(buf, points.len() as u32);
    for p in points {
        put_u64(buf, p.h);
        put_u64(buf, p.sl);
        put_u64(buf, p.tp);
        put_f64(buf, p.ratio);
        put_u64(buf, p.experts);
        put_u64(buf, p.top_k);
        put_u64(buf, p.stages);
        put_u64(buf, p.micro_batches);
        put_u64(buf, p.sp);
    }
}

impl Message {
    /// Encode the message payload (tag + fields, no length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_payload(&mut buf);
        buf
    }

    /// Append the payload (tag + fields) to `buf` without clearing it.
    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Hello { version } => {
                buf.push(TAG_HELLO);
                put_u32(buf, *version);
            }
            Message::Welcome {
                version,
                worker_id,
                heartbeat_ms,
                pipeline,
            } => {
                buf.push(TAG_WELCOME);
                put_u32(buf, *version);
                put_u64(buf, *worker_id);
                put_u32(buf, *heartbeat_ms);
                put_u32(buf, *pipeline);
            }
            Message::Reject { reason } => {
                buf.push(TAG_REJECT);
                put_str(buf, reason);
            }
            Message::Grant {
                job,
                device,
                device_fingerprint,
                batch,
                method,
                workload,
                axes,
                grid_fingerprint,
                leases,
            } => {
                buf.push(TAG_GRANT);
                put_u64(buf, *job);
                put_str(buf, device);
                put_u64(buf, *device_fingerprint);
                put_u64(buf, *batch);
                buf.push(method_to_wire(*method));
                buf.push(workload_to_wire(*workload));
                put_axes(buf, axes);
                put_u64(buf, *grid_fingerprint);
                put_u32(buf, leases.len() as u32);
                for lease in leases {
                    put_u32(buf, lease.chunk);
                    put_points(buf, &lease.points);
                }
            }
            Message::Done => buf.push(TAG_DONE),
            Message::ChunkResult { job, chunk, values } => {
                buf.push(TAG_CHUNK_RESULT);
                put_u64(buf, *job);
                put_u32(buf, *chunk);
                put_u32(buf, values.len() as u32);
                for v in values {
                    match v {
                        Ok((a, b)) => {
                            buf.push(0);
                            put_f64(buf, *a);
                            put_f64(buf, *b);
                        }
                        Err(e) => {
                            buf.push(1);
                            put_str(buf, e);
                        }
                    }
                }
            }
            Message::Heartbeat => buf.push(TAG_HEARTBEAT),
            Message::Refuse { job, chunk, reason } => {
                buf.push(TAG_REFUSE);
                put_u64(buf, *job);
                put_u32(buf, *chunk);
                put_str(buf, reason);
            }
        }
    }

    /// Append one length-prefixed frame to `buf` and return its size on
    /// the wire. The length prefix is patched in after encoding, so one
    /// reused buffer serves any number of frames with **zero
    /// allocations at steady state** — the writer threads' hot path.
    pub fn append_frame(&self, buf: &mut Vec<u8>) -> usize {
        let start = buf.len();
        buf.extend_from_slice(&[0u8; 4]);
        self.encode_payload(buf);
        let payload_len = buf.len() - start - 4;
        debug_assert!(payload_len as u32 <= MAX_FRAME_LEN);
        buf[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        buf.len() - start
    }

    /// Decode one payload produced by [`Message::encode`]. Strict:
    /// truncated fields, trailing bytes, and unknown tags are errors.
    pub fn decode(payload: &[u8]) -> io::Result<Message> {
        let mut r = Reader {
            buf: payload,
            at: 0,
        };
        let tag = r.u8()?;
        let msg = match tag {
            TAG_HELLO => Message::Hello { version: r.u32()? },
            TAG_WELCOME => Message::Welcome {
                version: r.u32()?,
                worker_id: r.u64()?,
                heartbeat_ms: r.u32()?,
                pipeline: r.u32()?,
            },
            TAG_REJECT => Message::Reject {
                reason: r.string()?,
            },
            TAG_GRANT => {
                let job = r.u64()?;
                let device = r.string()?;
                let device_fingerprint = r.u64()?;
                let batch = r.u64()?;
                let method = method_from_wire(r.u8()?)?;
                let workload = workload_from_wire(r.u8()?)?;
                let axes = SweepAxes {
                    hs: r.u64_list()?,
                    sls: r.u64_list()?,
                    tps: r.u64_list()?,
                    flop_vs_bw: r.f64_list()?,
                    experts: r.u64_list()?,
                    top_ks: r.u64_list()?,
                    stages: r.u64_list()?,
                    micro_batches: r.u64_list()?,
                    sps: r.u64_list()?,
                };
                let axes = Box::new(axes);
                let grid_fingerprint = r.u64()?;
                let n = r.len_prefix()?;
                let mut leases = Vec::with_capacity(n);
                for _ in 0..n {
                    let chunk = r.u32()?;
                    let points = r.points()?;
                    leases.push(ChunkLease { chunk, points });
                }
                Message::Grant {
                    job,
                    device,
                    device_fingerprint,
                    batch,
                    method,
                    workload,
                    axes,
                    grid_fingerprint,
                    leases,
                }
            }
            TAG_DONE => Message::Done,
            TAG_CHUNK_RESULT => {
                let job = r.u64()?;
                let chunk = r.u32()?;
                let n = r.len_prefix()?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(match r.u8()? {
                        0 => Ok((f64::from_bits(r.u64()?), f64::from_bits(r.u64()?))),
                        1 => Err(r.string()?),
                        other => return Err(bad(format!("unknown result tag {other}"))),
                    });
                }
                Message::ChunkResult { job, chunk, values }
            }
            TAG_HEARTBEAT => Message::Heartbeat,
            TAG_REFUSE => Message::Refuse {
                job: r.u64()?,
                chunk: r.u32()?,
                reason: r.string()?,
            },
            other => return Err(bad(format!("unknown message tag {other}"))),
        };
        if r.at != payload.len() {
            return Err(bad(format!(
                "{} trailing bytes after message tag {tag}",
                payload.len() - r.at
            )));
        }
        Ok(msg)
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated message"))?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u32` element count, sanity-bounded by the remaining payload so
    /// a corrupt count cannot trigger a huge allocation.
    fn len_prefix(&mut self) -> io::Result<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.at {
            return Err(bad(format!("element count {n} exceeds payload")));
        }
        Ok(n)
    }

    fn string(&mut self) -> io::Result<String> {
        let n = self.len_prefix()?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| bad("invalid UTF-8 in string"))
    }

    fn u64_list(&mut self) -> io::Result<Vec<u64>> {
        let n = self.len_prefix()?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn f64_list(&mut self) -> io::Result<Vec<f64>> {
        let n = self.len_prefix()?;
        (0..n).map(|_| self.u64().map(f64::from_bits)).collect()
    }

    fn points(&mut self) -> io::Result<Vec<GridPoint>> {
        let n = self.len_prefix()?;
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            points.push(GridPoint {
                h: self.u64()?,
                sl: self.u64()?,
                tp: self.u64()?,
                ratio: f64::from_bits(self.u64()?),
                experts: self.u64()?,
                top_k: self.u64()?,
                stages: self.u64()?,
                micro_batches: self.u64()?,
                sp: self.u64()?,
            });
        }
        Ok(points)
    }
}

// ---- framing -----------------------------------------------------------

/// Write one length-prefixed frame; returns total bytes on the wire
/// (callers feed this into the `dist.bytes_tx` counter).
pub fn write_frame(w: &mut impl Write, msg: &Message) -> io::Result<usize> {
    let mut frame = Vec::new();
    let n = msg.append_frame(&mut frame);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(n)
}

/// Write a batch of frames with one vectored syscall where the platform
/// allows, reusing `scratch`'s per-frame buffers so the steady state
/// allocates nothing. Returns total bytes on the wire.
pub fn write_batch(
    w: &mut impl Write,
    msgs: &[Message],
    scratch: &mut Vec<Vec<u8>>,
) -> io::Result<usize> {
    if msgs.is_empty() {
        return Ok(0);
    }
    if scratch.len() < msgs.len() {
        scratch.resize_with(msgs.len(), Vec::new);
    }
    let mut total = 0usize;
    for (msg, buf) in msgs.iter().zip(scratch.iter_mut()) {
        buf.clear();
        total += msg.append_frame(buf);
    }
    let mut slices: Vec<IoSlice<'_>> = scratch[..msgs.len()]
        .iter()
        .map(|b| IoSlice::new(b))
        .collect();
    let mut rest: &mut [IoSlice<'_>] = &mut slices;
    while !rest.is_empty() {
        match w.write_vectored(rest) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "batch write stalled",
                ))
            }
            Ok(n) => IoSlice::advance_slices(&mut rest, n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    w.flush()?;
    Ok(total)
}

/// Read one length-prefixed frame; returns the message and total bytes
/// read. Propagates the reader's timeout/EOF errors untouched so callers
/// can distinguish a silent peer from a malformed one.
pub fn read_frame(r: &mut impl Read) -> io::Result<(Message, usize)> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(bad(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let msg = Message::decode(&payload)?;
    Ok((msg, 4 + payload.len()))
}

/// Incremental frame extraction over a **nonblocking** byte stream: the
/// coordinator's poll-driven connection state machines [`fill`] raw
/// bytes whenever the socket is readable and pop complete frames with
/// [`next_frame`], without ever blocking mid-frame the way
/// [`read_frame`]'s `read_exact` would.
///
/// [`fill`]: FrameReader::fill
/// [`next_frame`]: FrameReader::next_frame
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    at: usize,
}

/// Compact the consumed prefix away once it outgrows this, so the buffer
/// neither reallocates per frame nor grows without bound.
const COMPACT_THRESHOLD: usize = 64 * 1024;

impl FrameReader {
    /// An empty reader.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Read once from `r` into the internal buffer, returning the byte
    /// count (0 = EOF). `WouldBlock`/`Interrupted` pass through untouched
    /// so nonblocking callers can keep their readiness loop simple.
    pub fn fill(&mut self, r: &mut impl Read) -> io::Result<usize> {
        if self.at == self.buf.len() {
            self.buf.clear();
            self.at = 0;
        } else if self.at > COMPACT_THRESHOLD {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        let mut tmp = [0u8; 64 * 1024];
        let n = r.read(&mut tmp)?;
        self.buf.extend_from_slice(&tmp[..n]);
        Ok(n)
    }

    /// Pop the next complete frame, if the buffer holds one. Returns the
    /// message plus its size on the wire; `Ok(None)` means "need more
    /// bytes", errors mean the stream is corrupt.
    pub fn next_frame(&mut self) -> io::Result<Option<(Message, usize)>> {
        let avail = &self.buf[self.at..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(bad(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
        }
        let len = len as usize;
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let msg = Message::decode(&avail[4..4 + len])?;
        self.at += 4 + len;
        Ok(Some((msg, 4 + len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_axes() -> SweepAxes {
        SweepAxes {
            hs: vec![4096],
            sls: vec![2048],
            tps: vec![16],
            flop_vs_bw: vec![2.0],
            experts: vec![1],
            top_ks: vec![1],
            stages: vec![1],
            micro_batches: vec![1],
            sps: vec![1],
        }
    }

    fn samples() -> Vec<Message> {
        vec![
            Message::Hello {
                version: PROTOCOL_VERSION,
            },
            Message::Welcome {
                version: PROTOCOL_VERSION,
                worker_id: 7,
                heartbeat_ms: 500,
                pipeline: 4,
            },
            Message::Reject {
                reason: "version mismatch".to_owned(),
            },
            Message::Grant {
                job: 3,
                device: "MI210".to_owned(),
                device_fingerprint: 0xDEAD_BEEF,
                batch: 1,
                method: Method::Projection,
                workload: Workload::Training,
                axes: Box::new(SweepAxes::from_sweep(&GridSweep::default())),
                grid_fingerprint: 0x0123_4567_89AB_CDEF,
                leases: vec![
                    ChunkLease {
                        chunk: 11,
                        points: vec![
                            GridPoint::new(4096, 2048, 16, 1.0),
                            GridPoint {
                                experts: 8,
                                top_k: 2,
                                stages: 4,
                                micro_batches: 8,
                                sp: 2,
                                ..GridPoint::new(16_384, 4096, 64, 4.0)
                            },
                        ],
                    },
                    ChunkLease {
                        chunk: 12,
                        points: vec![GridPoint::new(4096, 4096, 64, 2.0)],
                    },
                ],
            },
            Message::Grant {
                job: 4,
                device: "MI210".to_owned(),
                device_fingerprint: 1,
                batch: 8,
                method: Method::Projection,
                workload: Workload::Decode,
                axes: Box::new(sample_axes()),
                grid_fingerprint: 7,
                leases: vec![ChunkLease {
                    chunk: 0,
                    points: vec![GridPoint::new(4096, 2048, 16, 2.0)],
                }],
            },
            Message::Done,
            Message::ChunkResult {
                job: 3,
                chunk: 11,
                values: vec![
                    Ok((21.653_234, 47.25)),
                    Err("point panicked: tp exceeds heads".to_owned()),
                ],
            },
            Message::Heartbeat,
            Message::Refuse {
                job: 3,
                chunk: 11,
                reason: "unknown device `TPUv9`".to_owned(),
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in samples() {
            let decoded = Message::decode(&msg.encode()).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn float_values_round_trip_bit_exact() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, f64::NAN] {
            let msg = Message::ChunkResult {
                job: 0,
                chunk: 0,
                values: vec![Ok((v, -v))],
            };
            let Message::ChunkResult { values, .. } = Message::decode(&msg.encode()).unwrap()
            else {
                panic!("wrong variant");
            };
            let Ok((a, b)) = values[0] else {
                panic!("wrong result arm")
            };
            assert_eq!(a.to_bits(), v.to_bits());
            assert_eq!(b.to_bits(), (-v).to_bits());
        }
    }

    #[test]
    fn framing_round_trips_over_a_byte_stream() {
        let mut wire = Vec::new();
        let mut written = 0;
        for msg in samples() {
            written += write_frame(&mut wire, &msg).unwrap();
        }
        assert_eq!(written, wire.len());
        let mut cursor = std::io::Cursor::new(wire);
        let mut read_bytes = 0;
        for expected in samples() {
            let (msg, n) = read_frame(&mut cursor).unwrap();
            assert_eq!(msg, expected);
            read_bytes += n;
        }
        assert_eq!(read_bytes, written);
    }

    #[test]
    fn batched_vectored_writes_match_frame_by_frame_bytes() {
        let msgs = samples();
        let mut frame_by_frame = Vec::new();
        for msg in &msgs {
            write_frame(&mut frame_by_frame, msg).unwrap();
        }
        let mut batched = Vec::new();
        let mut scratch = Vec::new();
        let n = write_batch(&mut batched, &msgs, &mut scratch).unwrap();
        assert_eq!(batched, frame_by_frame, "identical bytes on the wire");
        assert_eq!(n, batched.len());
        // Steady state: the second batch reuses every scratch buffer.
        let caps: Vec<usize> = scratch.iter().map(Vec::capacity).collect();
        let mut again = Vec::new();
        write_batch(&mut again, &msgs, &mut scratch).unwrap();
        assert_eq!(again, frame_by_frame);
        assert_eq!(
            caps,
            scratch.iter().map(Vec::capacity).collect::<Vec<_>>(),
            "reused buffers must not reallocate"
        );
    }

    #[test]
    fn frame_reader_reassembles_frames_from_arbitrary_splits() {
        let msgs = samples();
        let mut wire = Vec::new();
        for msg in &msgs {
            write_frame(&mut wire, msg).unwrap();
        }
        // Drip the stream through the reader in adversarial slice sizes,
        // including 1-byte reads that split every length prefix.
        twocs_testkit::cases(16, |rng| {
            let mut reader = FrameReader::new();
            let mut decoded = Vec::new();
            let mut at = 0usize;
            while at < wire.len() {
                let step = rng.usize_in(1..64).min(wire.len() - at);
                let mut cursor = std::io::Cursor::new(&wire[at..at + step]);
                let n = reader.fill(&mut cursor).unwrap();
                assert_eq!(n, step);
                at += step;
                while let Some((msg, _)) = reader.next_frame().unwrap() {
                    decoded.push(msg);
                }
            }
            assert_eq!(decoded, msgs);
        });
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let good = Message::Welcome {
            version: 1,
            worker_id: 2,
            heartbeat_ms: 3,
            pipeline: 4,
        }
        .encode();
        for cut in 1..good.len() {
            assert!(
                Message::decode(&good[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(Message::decode(&trailing).is_err());
        assert!(Message::decode(&[99]).is_err(), "unknown tag");
        // Retired v3 pull-cycle tags must not decode as anything.
        for retired in [4u8, 5, 6] {
            assert!(
                Message::decode(&[retired]).is_err(),
                "retired tag {retired} must stay invalid"
            );
        }
    }

    #[test]
    fn oversized_frames_and_bogus_counts_are_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(read_frame(&mut std::io::Cursor::new(wire.clone())).is_err());
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(wire);
        reader.fill(&mut cursor).unwrap();
        assert!(reader.next_frame().is_err(), "FrameReader rejects it too");

        // A ChunkResult claiming u32::MAX values with a tiny payload must
        // fail fast instead of allocating.
        let mut payload = vec![super::TAG_CHUNK_RESULT];
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Message::decode(&payload).is_err());
    }

    /// Property coverage for the v4 grant framing: random multi-lease
    /// windows over the widened `GridPoint` (MoE/PP/SP axes) and every
    /// workload must survive encode → decode bit-exact, ratio included —
    /// through both the one-shot codec and the incremental
    /// [`FrameReader`].
    #[test]
    fn multi_lease_grant_round_trip_property() {
        twocs_testkit::cases(64, |rng| {
            let workload = match rng.u64_in(0..3) {
                0 => Workload::Training,
                1 => Workload::Prefill,
                _ => Workload::Decode,
            };
            let n_leases = rng.usize_in(1..8);
            let leases: Vec<ChunkLease> = rng.vec_of(n_leases, |r| {
                let n = r.usize_in(0..12);
                ChunkLease {
                    chunk: r.u32_in(0..10_000),
                    points: r.vec_of(n, |r| GridPoint {
                        h: r.u64_in(256..65_537),
                        sl: r.u64_in(1..8193),
                        tp: r.u64_in(1..257),
                        ratio: r.f64_in(1.0..16.0),
                        experts: r.u64_in(1..65),
                        top_k: r.u64_in(1..9),
                        stages: r.u64_in(1..17),
                        micro_batches: r.u64_in(1..33),
                        sp: r.u64_in(1..17),
                    }),
                }
            });
            let mut list = |hi: u64| {
                let len = rng.usize_in(1..4);
                rng.vec_of(len, |r| r.u64_in(1..hi))
            };
            let axes = SweepAxes {
                hs: list(65_537),
                sls: list(8193),
                tps: list(257),
                experts: list(65),
                top_ks: list(9),
                stages: list(17),
                micro_batches: list(33),
                sps: list(17),
                flop_vs_bw: {
                    let len = rng.usize_in(1..4);
                    rng.vec_of(len, |r| r.f64_in(1.0..16.0))
                },
            };
            let msg = Message::Grant {
                job: rng.next_u64(),
                device: "MI210".to_owned(),
                device_fingerprint: rng.next_u64(),
                batch: rng.u64_in(1..64),
                method: Method::Projection,
                workload,
                axes: Box::new(axes),
                grid_fingerprint: rng.next_u64(),
                leases,
            };
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
            let mut wire = Vec::new();
            let written = write_frame(&mut wire, &msg).unwrap();
            let mut reader = FrameReader::new();
            let mut cursor = std::io::Cursor::new(wire);
            reader.fill(&mut cursor).unwrap();
            let (decoded, n) = reader.next_frame().unwrap().expect("complete frame");
            assert_eq!(decoded, msg);
            assert_eq!(n, written);
        });
    }

    /// Pipelined result frames: a burst of back-to-back `ChunkResult`
    /// frames — what a double-buffered worker's writer thread flushes —
    /// round-trips through the batched vectored writer and the
    /// incremental reader without loss or reordering.
    #[test]
    fn pipelined_result_burst_round_trip_property() {
        twocs_testkit::cases(64, |rng| {
            let n_msgs = rng.usize_in(1..10);
            let msgs: Vec<Message> = rng.vec_of(n_msgs, |r| {
                let n = r.usize_in(0..20);
                let values: Vec<Result<(f64, f64), String>> = r.vec_of(n, |r| {
                    if r.bool() {
                        Ok((r.f64_in(-1e6..1e6), r.f64_in(0.0..200.0)))
                    } else {
                        Err(format!("case error {}", r.u64_in(0..1000)))
                    }
                });
                Message::ChunkResult {
                    job: r.next_u64(),
                    chunk: r.u32_in(0..10_000),
                    values,
                }
            });
            let mut wire = Vec::new();
            let mut scratch = Vec::new();
            let written = write_batch(&mut wire, &msgs, &mut scratch).unwrap();
            assert_eq!(written, wire.len());
            let mut reader = FrameReader::new();
            let mut cursor = std::io::Cursor::new(wire);
            while reader.fill(&mut cursor).unwrap() > 0 {}
            let mut decoded = Vec::new();
            while let Some((msg, _)) = reader.next_frame().unwrap() {
                decoded.push(msg);
            }
            assert_eq!(decoded, msgs);
        });
    }
}
