//! # twocs-dist — distributed sweep fabric
//!
//! Shards a [`twocs_core::sweep::GridSweep`] across worker processes
//! over TCP, with the **byte-identical output contract** intact: the
//! coordinator merges chunk results back in deterministic grid order and
//! every value travels as `f64::to_bits`, so the CSV a distributed sweep
//! prints is identical to a single-process `--jobs N` run — including
//! when a worker is killed mid-sweep and its chunks are reassigned.
//!
//! The crate is std-only, like the rest of the workspace: framing,
//! leasing, heartbeats, and reassignment are built directly on
//! `std::net` + threads.
//!
//! Protocol v4 is a **push** protocol with credit-based pipelining: the
//! coordinator keeps every worker topped up with a window of
//! [`CoordinatorConfig::pipeline`] outstanding chunk leases, so a worker
//! always has the next chunk in hand while evaluating the current one
//! and a network round-trip costs throughput only when it exceeds a
//! whole window of compute. There is no `Ready`/`Wait` polling chatter
//! and no idle backoff sleep — workers block on their own socket and
//! the coordinator drives every connection from one `poll(2)` loop.
//!
//! * [`proto`] — length-prefixed wire messages, the version handshake,
//!   and the incremental [`proto::FrameReader`] / vectored
//!   [`proto::write_batch`] used by the nonblocking endpoints.
//! * [`lease`] — the pure, clock-abstracted chunk lease state machine;
//!   a dead worker's **entire outstanding window** requeues at once.
//! * [`coordinator`] — [`Coordinator`]: accepts workers on a single
//!   poll-driven driver thread (64 workers are 64 pollfds, not 64
//!   threads), grants credit windows, reassigns on failure, degrades to
//!   local evaluation when no workers are connected. Implements
//!   [`twocs_core::sweep::GridExecutor`], so `twocs serve` can plug it
//!   into `/v1/sweep` unchanged.
//! * [`worker`] — [`run_worker`]: double-buffered evaluator the `twocs
//!   worker` subcommand runs — a reader thread keeps the lease queue
//!   full, the eval loop works through it, and a writer thread flushes
//!   results with vectored, allocation-reusing batch writes.
//!
//! ## Example (in-process pair)
//!
//! ```
//! use twocs_core::GridSweep;
//! use twocs_dist::coordinator::{Coordinator, CoordinatorConfig};
//! use twocs_dist::worker::{run_worker, WorkerConfig};
//! use twocs_hw::DeviceSpec;
//!
//! let coordinator = Coordinator::bind(CoordinatorConfig::default()).unwrap();
//! let addr = coordinator.local_addr().to_string();
//! let worker = std::thread::spawn(move || run_worker(&WorkerConfig::new(addr, 1)));
//! assert_eq!(coordinator.wait_for_workers(1, std::time::Duration::from_secs(10)), 1);
//!
//! let sweep = GridSweep {
//!     hs: vec![4096, 8192],
//!     sls: vec![2048],
//!     tps: vec![8],
//!     ..GridSweep::default()
//! };
//! let device = DeviceSpec::mi210();
//! let distributed = coordinator.run_sweep(&sweep, &device).unwrap().0;
//! let local = sweep.run(&device, 1).0;
//! assert_eq!(distributed.to_csv(), local.to_csv());
//!
//! drop(coordinator); // shutdown → workers get `Done`
//! worker.join().unwrap().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod lease;
pub mod proto;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorConfig, DistSummary, LOCAL_WORKER};
pub use lease::{ChunkId, Completion, LeaseTracker, WorkerId};
pub use proto::{Message, PROTOCOL_VERSION};
pub use worker::{run_worker, WorkerConfig, WorkerReport};
