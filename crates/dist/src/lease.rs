//! The coordinator's chunk-lease state machine.
//!
//! Pure data structure, no I/O and no real clock: callers pass a
//! monotonic `now` in milliseconds, which is what makes every
//! interleaving of worker joins, deaths, heartbeat expiries, and
//! duplicate completions unit- and property-testable (see the
//! `every_interleaving_completes_each_chunk_exactly_once` test).
//!
//! A chunk is always in exactly one of three states:
//!
//! ```text
//! pending --lease()--> leased --complete()--> completed
//!    ^                   |
//!    +--fail_worker()----+        (also expire(now) on lease timeout)
//! ```
//!
//! Exactly-once semantics: [`LeaseTracker::complete`] accepts the
//! **first** result for a chunk and marks later copies
//! [`Completion::Duplicate`] — a reassigned chunk whose original worker
//! turns out to be alive after all merges cleanly, because every
//! evaluator computes the same pure function of the grid point.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Coordinator-assigned worker identifier.
pub type WorkerId = u64;
/// Chunk index within one sweep job.
pub type ChunkId = u32;

/// Outcome of reporting a completed chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// First result for this chunk; it was recorded.
    Accepted,
    /// The chunk was already completed (e.g. it was reassigned after a
    /// heartbeat timeout and both evaluations finished). Ignore the
    /// value — it is identical by construction.
    Duplicate,
    /// The chunk id is not part of this job; the peer is confused or
    /// stale. Callers should drop the connection.
    Unknown,
}

#[derive(Debug, Clone, Copy)]
struct Lease {
    worker: WorkerId,
    expires_at: u64,
}

/// Tracks every chunk of one sweep job through the pending → leased →
/// completed lifecycle, with lease timeouts and reassignment.
#[derive(Debug, Clone)]
pub struct LeaseTracker {
    pending: VecDeque<ChunkId>,
    leased: BTreeMap<ChunkId, Lease>,
    completed: BTreeSet<ChunkId>,
    total: u32,
    reassigned: u64,
}

impl LeaseTracker {
    /// A tracker for chunks `0..chunks`, all pending.
    #[must_use]
    pub fn new(chunks: u32) -> Self {
        Self {
            pending: (0..chunks).collect(),
            leased: BTreeMap::new(),
            completed: BTreeSet::new(),
            total: chunks,
            reassigned: 0,
        }
    }

    /// Lease the next pending chunk to `worker` until `now + ttl_ms`.
    /// Returns `None` when nothing is pending (all chunks are leased out
    /// or completed).
    pub fn lease(&mut self, worker: WorkerId, now: u64, ttl_ms: u64) -> Option<ChunkId> {
        let chunk = self.pending.pop_front()?;
        self.leased.insert(
            chunk,
            Lease {
                worker,
                expires_at: now.saturating_add(ttl_ms),
            },
        );
        Some(chunk)
    }

    /// Extend every lease held by `worker` to `now + ttl_ms` — the
    /// effect of receiving its heartbeat.
    pub fn renew(&mut self, worker: WorkerId, now: u64, ttl_ms: u64) {
        let expires_at = now.saturating_add(ttl_ms);
        for lease in self.leased.values_mut().filter(|l| l.worker == worker) {
            lease.expires_at = expires_at;
        }
    }

    /// Record a result for `chunk`. See [`Completion`] for the
    /// exactly-once semantics.
    pub fn complete(&mut self, chunk: ChunkId) -> Completion {
        if chunk >= self.total {
            return Completion::Unknown;
        }
        if self.completed.contains(&chunk) {
            return Completion::Duplicate;
        }
        self.leased.remove(&chunk);
        // A completion can also race a requeue: the chunk timed out,
        // went back to pending, and then the original result arrived.
        // Accept it and drop the pending copy.
        self.pending.retain(|&c| c != chunk);
        self.completed.insert(chunk);
        Completion::Accepted
    }

    /// Return every chunk leased to `worker` to the pending queue — the
    /// effect of its connection dropping. Returns the requeued chunks.
    pub fn fail_worker(&mut self, worker: WorkerId) -> Vec<ChunkId> {
        let lost: Vec<ChunkId> = self
            .leased
            .iter()
            .filter(|(_, l)| l.worker == worker)
            .map(|(&c, _)| c)
            .collect();
        self.requeue(&lost);
        lost
    }

    /// Return every lease that expired at or before `now` to the pending
    /// queue — the effect of missed heartbeats. Returns the requeued
    /// chunks.
    pub fn expire(&mut self, now: u64) -> Vec<ChunkId> {
        let lost: Vec<ChunkId> = self
            .leased
            .iter()
            .filter(|(_, l)| l.expires_at <= now)
            .map(|(&c, _)| c)
            .collect();
        self.requeue(&lost);
        lost
    }

    fn requeue(&mut self, chunks: &[ChunkId]) {
        for &c in chunks {
            self.leased.remove(&c);
            self.pending.push_back(c);
            self.reassigned += 1;
        }
    }

    /// Whether every chunk has completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completed.len() as u32 == self.total
    }

    /// Chunks waiting for a lease.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Chunks currently leased out.
    #[must_use]
    pub fn leased_count(&self) -> usize {
        self.leased.len()
    }

    /// Chunks currently leased to `worker` — its outstanding credit
    /// window. The coordinator grants `pipeline - outstanding(w)` fresh
    /// chunks whenever this dips below the window size.
    #[must_use]
    pub fn outstanding(&self, worker: WorkerId) -> usize {
        self.leased.values().filter(|l| l.worker == worker).count()
    }

    /// Chunks completed so far.
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Total chunks in the job.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.total
    }

    /// How many times a chunk went back to pending after a failure or
    /// lease expiry.
    #[must_use]
    pub fn reassigned(&self) -> u64 {
        self.reassigned
    }

    /// Internal consistency: the three states partition `0..total`.
    /// Debug builds assert this after every transition in the tests.
    #[must_use]
    pub fn is_partition(&self) -> bool {
        let mut seen = BTreeSet::new();
        for &c in &self.pending {
            if !seen.insert(c) {
                return false;
            }
        }
        for &c in self.leased.keys() {
            if !seen.insert(c) {
                return false;
            }
        }
        for &c in &self.completed {
            if !seen.insert(c) {
                return false;
            }
        }
        seen.len() as u32 == self.total && seen.iter().all(|&c| c < self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_completes_every_chunk_once() {
        let mut t = LeaseTracker::new(4);
        let mut done = 0;
        while let Some(c) = t.lease(1, 0, 1000) {
            assert_eq!(t.complete(c), Completion::Accepted);
            done += 1;
        }
        assert_eq!(done, 4);
        assert!(t.is_complete());
        assert_eq!(t.reassigned(), 0);
        assert!(t.is_partition());
    }

    #[test]
    fn dead_worker_chunks_are_requeued_and_recoverable() {
        let mut t = LeaseTracker::new(3);
        let a = t.lease(1, 0, 1000).unwrap();
        let b = t.lease(1, 0, 1000).unwrap();
        let c = t.lease(2, 0, 1000).unwrap();
        let mut lost = t.fail_worker(1);
        lost.sort_unstable();
        assert_eq!(lost, {
            let mut v = vec![a, b];
            v.sort_unstable();
            v
        });
        assert_eq!(t.reassigned(), 2);
        assert_eq!(t.pending_count(), 2);
        // Worker 2 finishes its chunk and then drains the requeued work.
        assert_eq!(t.complete(c), Completion::Accepted);
        while let Some(x) = t.lease(2, 1, 1000) {
            assert_eq!(t.complete(x), Completion::Accepted);
        }
        assert!(t.is_complete());
        assert!(t.is_partition());
    }

    #[test]
    fn expiry_requeues_only_overdue_leases() {
        let mut t = LeaseTracker::new(2);
        let a = t.lease(1, 0, 100).unwrap();
        let b = t.lease(2, 0, 500).unwrap();
        assert!(t.expire(50).is_empty());
        assert_eq!(t.expire(100), vec![a]);
        assert_eq!(t.leased_count(), 1);
        // Renewal pushes worker 2's deadline out.
        t.renew(2, 400, 500);
        assert!(t.expire(600).is_empty());
        assert_eq!(t.expire(900), vec![b]);
        assert!(t.is_partition());
    }

    #[test]
    fn duplicate_and_unknown_completions_are_flagged() {
        let mut t = LeaseTracker::new(1);
        let a = t.lease(1, 0, 100).unwrap();
        // Lease times out, chunk is reassigned to worker 2...
        assert_eq!(t.expire(200), vec![a]);
        let a2 = t.lease(2, 200, 100).unwrap();
        assert_eq!(a2, a);
        // ...worker 2 finishes, then worker 1's zombie result arrives.
        assert_eq!(t.complete(a), Completion::Accepted);
        assert_eq!(t.complete(a), Completion::Duplicate);
        assert_eq!(t.complete(99), Completion::Unknown);
        assert!(t.is_partition());
    }

    /// The satellite property test: drive the tracker with a random
    /// interleaving of leases, completions, worker deaths, joins,
    /// renewals, and clock-driven expiries. Whatever the order, the run
    /// terminates with every chunk completed exactly once and the
    /// three-state partition invariant intact.
    #[test]
    fn every_interleaving_completes_each_chunk_exactly_once() {
        twocs_testkit::cases(128, |rng| {
            let total = rng.u32_in(1..24);
            let ttl = rng.u64_in(1..50);
            let mut t = LeaseTracker::new(total);
            let mut now = 0u64;
            let mut workers: Vec<WorkerId> = (1..=rng.u64_in(1..5)).collect();
            let mut next_worker = workers.len() as WorkerId + 1;
            let mut accepted = std::collections::BTreeMap::<ChunkId, u32>::new();

            let mut steps = 0u32;
            while !t.is_complete() {
                steps += 1;
                assert!(steps < 100_000, "interleaving failed to converge");
                now += rng.u64_in(0..20);
                match rng.u32_in(0..10) {
                    // Lease to a live worker (or revive the pool).
                    0..=4 => {
                        if workers.is_empty() {
                            workers.push(next_worker);
                            next_worker += 1;
                        }
                        let w = *rng.choose(&workers);
                        let _ = t.lease(w, now, ttl);
                    }
                    // Complete a currently leased chunk...
                    5 | 6 => {
                        let leased: Vec<ChunkId> = t.leased.keys().copied().collect();
                        if let Some(&c) = leased.first() {
                            if t.complete(c) == Completion::Accepted {
                                *accepted.entry(c).or_insert(0) += 1;
                            }
                        }
                    }
                    // ...or a random chunk id: duplicates of finished
                    // chunks and bogus ids must be flagged, a pending
                    // chunk's late result must be accepted.
                    7 => {
                        let c = rng.u32_in(0..total + 5);
                        match t.complete(c) {
                            Completion::Accepted => {
                                *accepted.entry(c).or_insert(0) += 1;
                            }
                            Completion::Duplicate => assert!(accepted.contains_key(&c)),
                            Completion::Unknown => assert!(c >= total),
                        }
                    }
                    // A worker dies; a fresh one joins to replace it.
                    8 => {
                        if let Some(i) =
                            (!workers.is_empty()).then(|| rng.usize_in(0..workers.len()))
                        {
                            let dead = workers.swap_remove(i);
                            let lost = t.fail_worker(dead);
                            assert!(lost.iter().all(|&c| !t.completed.contains(&c)));
                            workers.push(next_worker);
                            next_worker += 1;
                        }
                    }
                    // Heartbeats renew, silence expires.
                    _ => {
                        if rng.bool() {
                            if let Some(&w) = workers.first() {
                                t.renew(w, now, ttl);
                            }
                        } else {
                            let _ = t.expire(now);
                        }
                    }
                }
                assert!(t.is_partition(), "partition broken at now={now}");
            }

            assert_eq!(accepted.len() as u32, total, "every chunk completed");
            assert!(
                accepted.values().all(|&n| n == 1),
                "no chunk accepted twice"
            );
            assert!(accepted.keys().all(|&c| c < total));
        });
    }

    /// Pipelining satellite property: workers hold multi-chunk credit
    /// windows, result/death events arrive in a shuffled interleaving,
    /// and a death must drain the victim's **entire** outstanding window
    /// back to pending exactly once — no chunk lost, none double-queued,
    /// survivors' leases untouched.
    #[test]
    fn requeue_on_death_drains_the_full_outstanding_window_exactly_once() {
        twocs_testkit::cases(128, |rng| {
            let total = rng.u32_in(8..48);
            let pipeline = rng.usize_in(1..7);
            let n_workers = rng.u64_in(2..5);
            let mut t = LeaseTracker::new(total);
            let mut live: Vec<WorkerId> = (1..=n_workers).collect();
            let mut next_worker = n_workers + 1;

            // Top every worker up to its credit window, then run a
            // shuffled schedule of completions and deaths, refilling
            // windows after each event like the coordinator's tick does.
            loop {
                for &w in &live {
                    while t.outstanding(w) < pipeline && t.lease(w, 0, u64::MAX).is_some() {}
                }
                if t.is_complete() {
                    break;
                }
                // Shuffle the live set so the victim/finisher varies.
                live = {
                    let mut l = live.clone();
                    rng.shuffle(&mut l);
                    l
                };
                if rng.u32_in(0..4) == 0 && live.len() > 1 {
                    let victim = live.pop().unwrap();
                    let window = t.outstanding(victim);
                    let before_pending = t.pending_count();
                    let survivors_before: usize = live.iter().map(|&w| t.outstanding(w)).sum();
                    let lost = t.fail_worker(victim);
                    assert_eq!(lost.len(), window, "whole window requeued");
                    assert_eq!(
                        t.pending_count(),
                        before_pending + window,
                        "each lost chunk pending exactly once"
                    );
                    assert_eq!(t.outstanding(victim), 0);
                    assert_eq!(
                        live.iter().map(|&w| t.outstanding(w)).sum::<usize>(),
                        survivors_before,
                        "survivors' leases untouched"
                    );
                    // A second failure of the same worker is a no-op.
                    assert!(t.fail_worker(victim).is_empty());
                    live.push(next_worker);
                    next_worker += 1;
                } else if let Some(&w) = live.first() {
                    // The worker finishes the oldest chunk of its window.
                    if let Some((&c, _)) = t.leased.iter().find(|(_, l)| l.worker == w) {
                        assert_eq!(t.complete(c), Completion::Accepted);
                    }
                }
                assert!(t.is_partition());
            }
            assert_eq!(t.completed_count() as u32, total);
            assert!(t.is_partition());
        });
    }

    #[test]
    fn late_result_for_a_requeued_chunk_is_accepted_and_dequeued() {
        let mut t = LeaseTracker::new(1);
        let a = t.lease(1, 0, 100).unwrap();
        assert_eq!(t.expire(100), vec![a]);
        assert_eq!(t.pending_count(), 1);
        // The original worker was merely slow; its result arrives while
        // the chunk sits in the pending queue.
        assert_eq!(t.complete(a), Completion::Accepted);
        assert_eq!(t.pending_count(), 0, "pending copy must be dropped");
        assert!(t.is_complete());
        assert!(t.is_partition());
    }
}
