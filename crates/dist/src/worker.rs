//! The sweep worker: connects to a coordinator, receives pushed chunk
//! leases, and evaluates them with the same chunk kernel
//! ([`eval_chunk`]) a local run uses — factored per-axis tables when the
//! chunk supports them, the naive per-point path otherwise, bit-identical
//! either way — which is why distributed results merge byte-exactly.
//!
//! The v4 protocol is coordinator-driven and pipelined: after the
//! handshake the coordinator keeps a credit window of chunk leases
//! outstanding on the connection ([`Message::Grant`]), so the worker is
//! **double-buffered** — while the evaluation loop chews on the current
//! chunk, the next leases are already queued locally and finished
//! results are flushing from a dedicated writer thread. Three side
//! threads surround the evaluation loop:
//!
//! * a **reader** that blocks on the socket, stamps each incoming frame
//!   with its (optionally latency-shifted) delivery time, and feeds the
//!   work queue — no `Ready`/`Wait` idle poll, the coordinator's grant
//!   push *is* the wake;
//! * a **writer** that owns the write half and flushes every outgoing
//!   frame — results, refusals, *and heartbeats* — with vectored,
//!   buffer-reused batch encoding, so a big result never blocks the
//!   evaluation loop and every wire byte lands in one tx counter;
//! * a **heartbeat** ticker at the cadence the coordinator requested in
//!   `Welcome`, so a slow chunk does not read as a dead worker.
//!
//! For latency experiments ([`WorkerConfig::injected_latency`], or the
//! [`RTT_ENV`] hook) the worker models pure propagation delay: incoming
//! frames become visible to the evaluation loop RTT/2 after they are
//! read, outgoing frames are held by the writer until RTT/2 after they
//! are queued. Bandwidth/occupancy is untouched, so a pipelined window
//! overlaps the injected latency exactly the way real WAN RTT would be
//! overlapped.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::proto::{read_frame, write_batch, write_frame, Message, SweepAxes, PROTOCOL_VERSION};
use twocs_core::planner::FactoredPlan;
use twocs_core::serialized::Method;
use twocs_core::sweep::{eval_chunk, set_parallelism, GridPoint, PointResults, Workload};
use twocs_hw::DeviceSpec;

/// Test hook: per-chunk artificial delay in milliseconds, read from the
/// environment when [`WorkerConfig::chunk_delay`] is unset. The CI
/// worker-kill smoke test uses this to make "a worker dies mid-sweep
/// while holding a full credit window" land deterministically instead of
/// racing a sub-millisecond evaluation.
pub const CHUNK_DELAY_ENV: &str = "TWOCS_DIST_CHUNK_DELAY_MS";

/// Test hook: injected round-trip time in milliseconds, read from the
/// environment when [`WorkerConfig::injected_latency`] is unset. The
/// `dist_perf` bench uses the config field directly; the env var exists
/// for shell-driven experiments against a real CLI worker.
pub const RTT_ENV: &str = "TWOCS_DIST_RTT_MS";

/// Most frames the writer thread coalesces into one vectored write.
const MAX_WRITE_BATCH: usize = 64;

/// Tuning knobs for [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address, e.g. `127.0.0.1:7070`.
    pub connect: String,
    /// Thread budget for evaluating a chunk's points.
    pub jobs: usize,
    /// Artificial per-chunk evaluation delay (tests). Falls back to
    /// [`CHUNK_DELAY_ENV`] when `None`.
    pub chunk_delay: Option<Duration>,
    /// Injected round-trip time, split evenly across the two directions
    /// (benchmarks). Falls back to [`RTT_ENV`] when `None`.
    pub injected_latency: Option<Duration>,
}

impl WorkerConfig {
    /// A worker config for `connect` with `jobs` evaluation threads.
    #[must_use]
    pub fn new(connect: impl Into<String>, jobs: usize) -> Self {
        Self {
            connect: connect.into(),
            jobs: jobs.max(1),
            chunk_delay: None,
            injected_latency: None,
        }
    }
}

/// What one worker session did, for the stderr summary.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Coordinator-assigned worker id.
    pub worker_id: u64,
    /// Chunks evaluated and reported.
    pub chunks: u64,
    /// Grid points evaluated.
    pub points: u64,
    /// Leases refused (device not resolvable on this worker).
    pub refused: u64,
    /// Protocol bytes sent — every frame on the wire, heartbeats and
    /// handshake included, because the writer thread is the single
    /// place transmit bytes are counted.
    pub bytes_tx: u64,
    /// Protocol bytes received.
    pub bytes_rx: u64,
    /// Time spent evaluating chunks.
    pub busy: Duration,
    /// Time spent waiting for work — the pipeline's exposed
    /// communication. Near zero when the credit window hides the RTT.
    pub idle: Duration,
}

impl std::fmt::Display for WorkerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {}: {} chunk(s), {} point(s), {} refused, busy {:.1?}, idle {:.1?}, wire {} B out / {} B in",
            self.worker_id,
            self.chunks,
            self.points,
            self.refused,
            self.busy,
            self.idle,
            self.bytes_tx,
            self.bytes_rx,
        )
    }
}

/// Job-level context shared by every chunk of one grant, decoded once.
struct GrantShared {
    job: u64,
    device: String,
    device_fingerprint: u64,
    batch: u64,
    method: Method,
    workload: Workload,
    axes: Box<SweepAxes>,
    grid_fingerprint: u64,
}

/// One unit handed from the reader thread to the evaluation loop.
enum WorkItem {
    /// A leased chunk, visible to the evaluator at `deliver_at`.
    Chunk {
        grant: Arc<GrantShared>,
        chunk: u32,
        points: Vec<GridPoint>,
        deliver_at: Option<Instant>,
    },
    /// Coordinator said `Done`: exit cleanly.
    Done,
    /// The connection or protocol failed; the loop should report this.
    Failed(String),
}

/// One frame queued for the writer thread. `due` is the injected-latency
/// release time; `None` sends immediately.
struct Outgoing {
    msg: Message,
    due: Option<Instant>,
}

fn env_ms(var: &str) -> Option<Duration> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
}

/// The writer thread: sole owner of the socket's write half. Batches
/// everything already due into one vectored write with reused buffers
/// (allocation-free at steady state) and accounts every byte it sends.
fn writer_loop(
    mut stream: TcpStream,
    rx: &Receiver<Outgoing>,
    bytes_tx: &AtomicU64,
    fail: &Mutex<Option<String>>,
) {
    let metrics = twocs_obs::metrics::global();
    let mut scratch: Vec<Vec<u8>> = Vec::new();
    let mut batch: Vec<Message> = Vec::new();
    let mut carry: Option<Outgoing> = None;
    loop {
        let first = match carry.take() {
            Some(o) => o,
            None => match rx.recv() {
                Ok(o) => o,
                // Every sender hung up: the session is over and the
                // queue is drained.
                Err(_) => break,
            },
        };
        if let Some(due) = first.due {
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        batch.clear();
        batch.push(first.msg);
        while batch.len() < MAX_WRITE_BATCH {
            match rx.try_recv() {
                Ok(o) => {
                    if o.due.is_some_and(|d| d > Instant::now()) {
                        carry = Some(o);
                        break;
                    }
                    batch.push(o.msg);
                }
                Err(_) => break,
            }
        }
        match write_batch(&mut stream, &batch, &mut scratch) {
            Ok(n) => {
                bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
                metrics.counter("dist.bytes_tx").add(n as u64);
            }
            Err(e) => {
                let mut slot = fail.lock().unwrap_or_else(PoisonError::into_inner);
                slot.get_or_insert_with(|| format!("coordinator write: {e}"));
                break;
            }
        }
    }
}

/// The reader thread: blocks on the socket, stamps frames with their
/// latency-shifted delivery time, and feeds the evaluation loop's work
/// queue. Always pushes a terminal [`WorkItem`] before exiting so the
/// evaluator never waits on a dead channel.
fn reader_loop(
    mut stream: TcpStream,
    work_tx: &Sender<WorkItem>,
    bytes_rx: &AtomicU64,
    depth: &AtomicI64,
    half_rtt: Option<Duration>,
) {
    let metrics = twocs_obs::metrics::global();
    let terminal = loop {
        let (msg, n) = match read_frame(&mut stream) {
            Ok(ok) => ok,
            Err(e) => break WorkItem::Failed(format!("coordinator read: {e}")),
        };
        bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
        metrics.counter("dist.bytes_rx").add(n as u64);
        match msg {
            Message::Grant {
                job,
                device,
                device_fingerprint,
                batch,
                method,
                workload,
                axes,
                grid_fingerprint,
                leases,
            } => {
                let deliver_at = half_rtt.map(|d| Instant::now() + d);
                let grant = Arc::new(GrantShared {
                    job,
                    device,
                    device_fingerprint,
                    batch,
                    method,
                    workload,
                    axes,
                    grid_fingerprint,
                });
                for lease in leases {
                    let queued = depth.fetch_add(1, Ordering::Relaxed) + 1;
                    metrics.gauge("dist.pipeline.depth").set(queued as f64);
                    let item = WorkItem::Chunk {
                        grant: Arc::clone(&grant),
                        chunk: lease.chunk,
                        points: lease.points,
                        deliver_at,
                    };
                    if work_tx.send(item).is_err() {
                        return;
                    }
                }
            }
            Message::Done => break WorkItem::Done,
            other => break WorkItem::Failed(format!("unexpected coordinator message: {other:?}")),
        }
    };
    let _ = work_tx.send(terminal);
}

/// Connect to a coordinator and evaluate pushed chunk leases until it
/// says `Done` or the connection drops. Returns a session report, or an
/// error string suitable for the CLI (handshake rejection, connect
/// failure, protocol violation).
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerReport, String> {
    let metrics = twocs_obs::metrics::global();
    let _span = twocs_obs::span(&format!("worker {}", cfg.connect), "dist");
    let chunk_delay = cfg.chunk_delay.or_else(|| env_ms(CHUNK_DELAY_ENV));
    let half_rtt = cfg
        .injected_latency
        .or_else(|| env_ms(RTT_ENV))
        .map(|rtt| rtt / 2);

    let stream = TcpStream::connect(&cfg.connect)
        .map_err(|e| format!("connect to coordinator {}: {e}", cfg.connect))?;
    let _ = stream.set_nodelay(true);
    let read_stream = stream
        .try_clone()
        .map_err(|e| format!("clone coordinator socket: {e}"))?;
    let mut write_stream = stream
        .try_clone()
        .map_err(|e| format!("clone coordinator socket: {e}"))?;

    let bytes_tx = Arc::new(AtomicU64::new(0));
    let bytes_rx = Arc::new(AtomicU64::new(0));
    let depth = Arc::new(AtomicI64::new(0));
    let write_fail = Arc::new(Mutex::new(None::<String>));

    // Handshake runs synchronously on this thread before the pipeline
    // threads exist; its bytes land in the same counters.
    let n = write_frame(
        &mut write_stream,
        &Message::Hello {
            version: PROTOCOL_VERSION,
        },
    )
    .map_err(|e| format!("coordinator write: {e}"))?;
    bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
    metrics.counter("dist.bytes_tx").add(n as u64);
    let mut hs_stream = read_stream
        .try_clone()
        .map_err(|e| format!("clone coordinator socket: {e}"))?;
    let (reply, n) = read_frame(&mut hs_stream).map_err(|e| format!("coordinator read: {e}"))?;
    bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
    metrics.counter("dist.bytes_rx").add(n as u64);
    let (worker_id, heartbeat, _window) = match reply {
        Message::Welcome {
            version: PROTOCOL_VERSION,
            worker_id,
            heartbeat_ms,
            pipeline,
        } => (
            worker_id,
            Duration::from_millis(u64::from(heartbeat_ms)),
            pipeline,
        ),
        Message::Welcome { version, .. } => {
            return Err(format!(
                "coordinator accepted v{version} but this worker speaks v{PROTOCOL_VERSION}"
            ));
        }
        Message::Reject { reason } => return Err(format!("coordinator rejected worker: {reason}")),
        other => return Err(format!("unexpected handshake reply: {other:?}")),
    };
    metrics.counter("dist.worker_sessions").inc();

    // Pipeline threads: reader feeds the work queue, writer drains the
    // outgoing queue, heartbeat ticks into the outgoing queue.
    let (work_tx, work_rx) = std::sync::mpsc::channel::<WorkItem>();
    let (out_tx, out_rx) = std::sync::mpsc::channel::<Outgoing>();

    let reader_thread = {
        let bytes_rx = Arc::clone(&bytes_rx);
        let depth = Arc::clone(&depth);
        std::thread::Builder::new()
            .name("dist-reader".to_owned())
            .spawn(move || reader_loop(read_stream, &work_tx, &bytes_rx, &depth, half_rtt))
            .map_err(|e| format!("spawn reader thread: {e}"))?
    };
    let writer_thread = {
        let bytes_tx = Arc::clone(&bytes_tx);
        let write_fail = Arc::clone(&write_fail);
        std::thread::Builder::new()
            .name("dist-writer".to_owned())
            .spawn(move || writer_loop(write_stream, &out_rx, &bytes_tx, &write_fail))
            .map_err(|e| format!("spawn writer thread: {e}"))?
    };
    let hb_stop = Arc::new(AtomicBool::new(false));
    let heartbeat_thread = {
        let stop = Arc::clone(&hb_stop);
        let out_tx = out_tx.clone();
        std::thread::Builder::new()
            .name("dist-heartbeat".to_owned())
            .spawn(move || {
                let period = heartbeat.max(Duration::from_millis(1));
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let beat = Outgoing {
                        msg: Message::Heartbeat,
                        due: half_rtt.map(|d| Instant::now() + d),
                    };
                    if out_tx.send(beat).is_err() {
                        break;
                    }
                }
            })
            .map_err(|e| format!("spawn heartbeat thread: {e}"))?
    };

    let mut report = WorkerReport {
        worker_id,
        chunks: 0,
        points: 0,
        refused: 0,
        bytes_tx: 0,
        bytes_rx: 0,
        busy: Duration::ZERO,
        idle: Duration::ZERO,
    };
    set_parallelism(cfg.jobs);

    // One whole-grid factored plan per (grid, device) pair, reused
    // across every chunk the coordinator grants from the same sweep —
    // the per-axis tables are built once instead of once per chunk.
    // `None` in the value slot means the sweep has no factored form
    // (simulation method) and chunks take the naive path.
    let mut plan_cache: Option<(u64, u64, Option<FactoredPlan>)> = None;
    // A job we refused once stays refused: later chunks of the same
    // grant are dropped silently while the coordinator winds us down.
    let mut refused_job: Option<u64> = None;

    let record_idle = |report: &mut WorkerReport, idle: Duration| {
        report.idle += idle;
        metrics
            .counter("dist.worker.idle_time")
            .add_duration_us(idle);
    };

    let outcome = loop {
        // Double-buffering in action: when the credit window is doing
        // its job the next chunk is already queued and `try_recv`
        // succeeds; a blocking wait is an exposed-communication stall.
        let item = match work_rx.try_recv() {
            Ok(item) => item,
            Err(TryRecvError::Empty) => {
                metrics.counter("dist.pipeline.stalls").inc();
                let t0 = Instant::now();
                match work_rx.recv() {
                    Ok(item) => {
                        record_idle(&mut report, t0.elapsed());
                        item
                    }
                    Err(_) => break Err("worker reader thread died".to_owned()),
                }
            }
            Err(TryRecvError::Disconnected) => break Err("worker reader thread died".to_owned()),
        };
        let (grant, chunk, points, deliver_at) = match item {
            WorkItem::Chunk {
                grant,
                chunk,
                points,
                deliver_at,
            } => (grant, chunk, points, deliver_at),
            WorkItem::Done => break Ok(()),
            WorkItem::Failed(e) => break Err(e),
        };
        // Injected propagation delay: the lease "arrives" half an RTT
        // after the reader pulled it off the loopback socket.
        if let Some(due) = deliver_at {
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
                record_idle(&mut report, due - now);
            }
        }
        let queued = depth.fetch_sub(1, Ordering::Relaxed) - 1;
        metrics.gauge("dist.pipeline.depth").set(queued as f64);

        if refused_job == Some(grant.job) {
            continue;
        }
        let Some(dev) = resolve_device(&grant.device, grant.device_fingerprint) else {
            report.refused += 1;
            refused_job = Some(grant.job);
            metrics.counter("dist.leases_refused").inc();
            let refuse = Outgoing {
                msg: Message::Refuse {
                    job: grant.job,
                    chunk,
                    reason: format!("device `{}` not in this worker's catalog", grant.device),
                },
                due: half_rtt.map(|d| Instant::now() + d),
            };
            if out_tx.send(refuse).is_err() {
                break Err(writer_error(&write_fail));
            }
            continue;
        };
        let _span = twocs_obs::span(&format!("evaluate chunk {chunk}"), "dist");
        let t0 = Instant::now();
        if let Some(delay) = chunk_delay {
            std::thread::sleep(delay);
        }
        let key = (grant.grid_fingerprint, grant.device_fingerprint);
        let plan = match &plan_cache {
            Some((g, d, plan)) if (*g, *d) == key => {
                metrics.counter("dist.plan_cache_hits").inc();
                plan.as_ref()
            }
            _ => {
                // Rebuild the sweep from the grant's axes and
                // cross-check its fingerprint; a mismatch means the
                // coordinator and worker disagree about the grid, so
                // fall back to the per-chunk path rather than trust the
                // reconstruction.
                let sweep = grant
                    .axes
                    .to_sweep(grant.batch, grant.method, grant.workload);
                let plan = if sweep.fingerprint() == grant.grid_fingerprint {
                    FactoredPlan::build_from_sweep(&dev, &sweep)
                } else {
                    None
                };
                plan_cache = Some((key.0, key.1, plan));
                metrics.counter("dist.plan_cache_builds").inc();
                plan_cache.as_ref().and_then(|(_, _, p)| p.as_ref())
            }
        };
        // Factored when the sweep supports it, naive otherwise; either
        // way per-point panics degrade to per-point errors and the
        // values are bit-identical to a local run's — the merge
        // contract.
        let values = match plan {
            Some(plan) => {
                let mut out = PointResults::with_capacity(points.len());
                plan.eval_batch(&points, &mut out);
                out
            }
            None => eval_chunk(&dev, &points, grant.batch, grant.method, grant.workload),
        };
        let busy = t0.elapsed();
        report.busy += busy;
        metrics
            .counter("dist.worker.busy_time")
            .add_duration_us(busy);
        report.chunks += 1;
        report.points += points.len() as u64;
        metrics.counter("dist.chunks_evaluated").inc();
        let result = Outgoing {
            msg: Message::ChunkResult {
                job: grant.job,
                chunk,
                values,
            },
            due: half_rtt.map(|d| Instant::now() + d),
        };
        if out_tx.send(result).is_err() {
            break Err(writer_error(&write_fail));
        }
    };

    // Teardown: stop the heartbeat first (it holds an outgoing sender),
    // then drop ours so the writer drains the queue and exits, and only
    // then shut the socket down to unblock the reader.
    hb_stop.store(true, Ordering::SeqCst);
    drop(out_tx);
    let _ = heartbeat_thread.join();
    let _ = writer_thread.join();
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = reader_thread.join();
    report.bytes_tx = bytes_tx.load(Ordering::Relaxed);
    report.bytes_rx = bytes_rx.load(Ordering::Relaxed);
    outcome.map(|()| report)
}

/// The writer thread's recorded failure, or a generic message if it
/// vanished without one.
fn writer_error(fail: &Mutex<Option<String>>) -> String {
    fail.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
        .unwrap_or_else(|| "worker writer thread died".to_owned())
}

/// Look up `name` in the device catalog and verify its fingerprint
/// matches the coordinator's, so both sides are provably evaluating the
/// same hardware model.
fn resolve_device(name: &str, fingerprint: u64) -> Option<DeviceSpec> {
    DeviceSpec::catalog()
        .into_iter()
        .find(|d| d.name() == name && d.fingerprint() == fingerprint)
}
