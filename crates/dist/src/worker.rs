//! The sweep worker: connects to a coordinator, pulls chunk leases, and
//! evaluates them with the same chunk kernel ([`eval_chunk`]) a local
//! run uses — factored per-axis tables when the chunk supports them,
//! the naive per-point path otherwise, bit-identical either way — which
//! is why distributed results merge byte-exactly.
//!
//! The protocol is worker-driven: the main loop sends `Ready`, the
//! coordinator answers `Lease` (work), `Wait` (idle; ask again shortly),
//! or `Done` (exit). A side thread sends `Heartbeat` at the cadence the
//! coordinator requested in `Welcome`, sharing the write half behind a
//! mutex, so a slow chunk does not read as a dead worker.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::proto::{read_frame, write_frame, Message, PROTOCOL_VERSION};
use twocs_core::planner::FactoredPlan;
use twocs_core::sweep::{eval_chunk, set_parallelism, PointResults};
use twocs_hw::DeviceSpec;

/// Test hook: per-chunk artificial delay in milliseconds, read from the
/// environment once at startup. The CI worker-kill smoke test uses this
/// to make "a worker dies mid-sweep while holding a lease" land
/// deterministically instead of racing a sub-millisecond evaluation.
pub const CHUNK_DELAY_ENV: &str = "TWOCS_DIST_CHUNK_DELAY_MS";

/// Tuning knobs for [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address, e.g. `127.0.0.1:7070`.
    pub connect: String,
    /// Thread budget for evaluating a chunk's points.
    pub jobs: usize,
    /// Idle backoff after a `Wait` before re-sending `Ready`.
    pub idle_backoff: Duration,
}

impl WorkerConfig {
    /// A worker config for `connect` with `jobs` evaluation threads.
    #[must_use]
    pub fn new(connect: impl Into<String>, jobs: usize) -> Self {
        Self {
            connect: connect.into(),
            jobs: jobs.max(1),
            idle_backoff: Duration::from_millis(20),
        }
    }
}

/// What one worker session did, for the stderr summary.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Coordinator-assigned worker id.
    pub worker_id: u64,
    /// Chunks evaluated and reported.
    pub chunks: u64,
    /// Grid points evaluated.
    pub points: u64,
    /// Leases refused (device not resolvable on this worker).
    pub refused: u64,
    /// Protocol bytes sent.
    pub bytes_tx: u64,
    /// Protocol bytes received.
    pub bytes_rx: u64,
    /// Time spent evaluating chunks.
    pub busy: Duration,
}

impl std::fmt::Display for WorkerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {}: {} chunk(s), {} point(s), {} refused, busy {:.1?}, wire {} B out / {} B in",
            self.worker_id,
            self.chunks,
            self.points,
            self.refused,
            self.busy,
            self.bytes_tx,
            self.bytes_rx,
        )
    }
}

/// The write half shared between the main loop and the heartbeat thread.
struct Writer {
    stream: Mutex<TcpStream>,
    bytes_tx: AtomicU64,
    stop: AtomicBool,
}

impl Writer {
    fn send(&self, msg: &Message) -> std::io::Result<()> {
        let mut stream = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        let n = write_frame(&mut *stream, msg)?;
        self.bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
        twocs_obs::metrics::global()
            .counter("dist.bytes_tx")
            .add(n as u64);
        Ok(())
    }
}

/// Connect to a coordinator and serve leases until it says `Done`, the
/// connection drops, or a lease must be refused. Returns a session
/// report, or an error string suitable for the CLI (handshake rejection,
/// connect failure, protocol violation).
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerReport, String> {
    let metrics = twocs_obs::metrics::global();
    let _span = twocs_obs::span(&format!("worker {}", cfg.connect), "dist");
    let chunk_delay = std::env::var(CHUNK_DELAY_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis);

    let stream = TcpStream::connect(&cfg.connect)
        .map_err(|e| format!("connect to coordinator {}: {e}", cfg.connect))?;
    let _ = stream.set_nodelay(true);
    let mut reader = stream
        .try_clone()
        .map_err(|e| format!("clone coordinator socket: {e}"))?;
    let writer = Arc::new(Writer {
        stream: Mutex::new(stream),
        bytes_tx: AtomicU64::new(0),
        stop: AtomicBool::new(false),
    });
    let mut bytes_rx = 0u64;
    let mut recv = |reader: &mut TcpStream| -> Result<Message, String> {
        let (msg, n) = read_frame(reader).map_err(|e| format!("coordinator read: {e}"))?;
        bytes_rx += n as u64;
        metrics.counter("dist.bytes_rx").add(n as u64);
        Ok(msg)
    };

    // Handshake.
    writer
        .send(&Message::Hello {
            version: PROTOCOL_VERSION,
        })
        .map_err(|e| format!("coordinator write: {e}"))?;
    let (worker_id, heartbeat) = match recv(&mut reader)? {
        Message::Welcome {
            version: PROTOCOL_VERSION,
            worker_id,
            heartbeat_ms,
        } => (worker_id, Duration::from_millis(u64::from(heartbeat_ms))),
        Message::Welcome { version, .. } => {
            return Err(format!(
                "coordinator accepted v{version} but this worker speaks v{PROTOCOL_VERSION}"
            ));
        }
        Message::Reject { reason } => return Err(format!("coordinator rejected worker: {reason}")),
        other => return Err(format!("unexpected handshake reply: {other:?}")),
    };
    metrics.counter("dist.worker_sessions").inc();

    // Heartbeat thread: liveness while a chunk computes, and while idle.
    let hb_writer = Arc::clone(&writer);
    let heartbeat_thread = std::thread::Builder::new()
        .name("dist-heartbeat".to_owned())
        .spawn(move || {
            let period = heartbeat.max(Duration::from_millis(1));
            while !hb_writer.stop.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                if hb_writer.stop.load(Ordering::Relaxed)
                    || hb_writer.send(&Message::Heartbeat).is_err()
                {
                    break;
                }
            }
        })
        .map_err(|e| format!("spawn heartbeat thread: {e}"))?;

    let mut report = WorkerReport {
        worker_id,
        chunks: 0,
        points: 0,
        refused: 0,
        bytes_tx: 0,
        bytes_rx: 0,
        busy: Duration::ZERO,
    };
    set_parallelism(cfg.jobs);

    // One whole-grid factored plan per (grid, device) pair, reused
    // across every chunk the coordinator leases from the same sweep —
    // the per-axis tables are built once instead of once per chunk.
    // `None` in the value slot means the sweep has no factored form
    // (simulation method) and chunks take the naive path.
    let mut plan_cache: Option<(u64, u64, Option<FactoredPlan>)> = None;

    let outcome = loop {
        if let Err(e) = writer.send(&Message::Ready) {
            break Err(format!("coordinator write: {e}"));
        }
        // Our own heartbeats never echo back; anything read here is a
        // coordinator directive.
        match recv(&mut reader) {
            Ok(Message::Wait) => {
                std::thread::sleep(cfg.idle_backoff);
            }
            Ok(Message::Done) => break Ok(()),
            Ok(Message::Lease {
                job,
                chunk,
                device,
                device_fingerprint,
                batch,
                method,
                workload,
                axes,
                grid_fingerprint,
                points,
            }) => {
                let Some(dev) = resolve_device(&device, device_fingerprint) else {
                    report.refused += 1;
                    metrics.counter("dist.leases_refused").inc();
                    let refuse = Message::Refuse {
                        job,
                        chunk,
                        reason: format!("device `{device}` not in this worker's catalog"),
                    };
                    if let Err(e) = writer.send(&refuse) {
                        break Err(format!("coordinator write: {e}"));
                    }
                    continue;
                };
                let _span = twocs_obs::span(&format!("evaluate chunk {chunk}"), "dist");
                let t0 = Instant::now();
                if let Some(delay) = chunk_delay {
                    std::thread::sleep(delay);
                }
                let key = (grid_fingerprint, device_fingerprint);
                let plan = match &plan_cache {
                    Some((g, d, plan)) if (*g, *d) == key => {
                        metrics.counter("dist.plan_cache_hits").inc();
                        plan.as_ref()
                    }
                    _ => {
                        // Rebuild the sweep from the lease's axes and
                        // cross-check its fingerprint; a mismatch means
                        // the coordinator and worker disagree about the
                        // grid, so fall back to the per-chunk path
                        // rather than trust the reconstruction.
                        let sweep = axes.to_sweep(batch, method, workload);
                        let plan = if sweep.fingerprint() == grid_fingerprint {
                            FactoredPlan::build_from_sweep(&dev, &sweep)
                        } else {
                            None
                        };
                        plan_cache = Some((key.0, key.1, plan));
                        metrics.counter("dist.plan_cache_builds").inc();
                        plan_cache.as_ref().and_then(|(_, _, p)| p.as_ref())
                    }
                };
                // Factored when the sweep supports it, naive otherwise;
                // either way per-point panics degrade to per-point
                // errors and the values are bit-identical to a local
                // run's — the merge contract.
                let values = match plan {
                    Some(plan) => {
                        let mut out = PointResults::with_capacity(points.len());
                        plan.eval_batch(&points, &mut out);
                        out
                    }
                    None => eval_chunk(&dev, &points, batch, method, workload),
                };
                report.busy += t0.elapsed();
                report.chunks += 1;
                report.points += points.len() as u64;
                metrics.counter("dist.chunks_evaluated").inc();
                let result = Message::ChunkResult { job, chunk, values };
                if let Err(e) = writer.send(&result) {
                    break Err(format!("coordinator write: {e}"));
                }
            }
            Ok(other) => break Err(format!("unexpected coordinator message: {other:?}")),
            Err(e) => break Err(e),
        }
    };

    writer.stop.store(true, Ordering::SeqCst);
    let _ = writer
        .stream
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .shutdown(std::net::Shutdown::Both);
    let _ = heartbeat_thread.join();
    report.bytes_tx = writer.bytes_tx.load(Ordering::Relaxed);
    report.bytes_rx = bytes_rx;
    outcome.map(|()| report)
}

/// Look up `name` in the device catalog and verify its fingerprint
/// matches the coordinator's, so both sides are provably evaluating the
/// same hardware model.
fn resolve_device(name: &str, fingerprint: u64) -> Option<DeviceSpec> {
    DeviceSpec::catalog()
        .into_iter()
        .find(|d| d.name() == name && d.fingerprint() == fingerprint)
}
