//! The sweep coordinator: accepts worker registrations over TCP, shards
//! a [`GridSweep`] into leased chunks, and merges results back in
//! deterministic grid order.
//!
//! ## Threads
//!
//! * **Driver** — ONE thread for the whole fabric, built on the
//!   nonblocking `poll(2)` readiness loop from `twocs_serve::poll` (the
//!   same primitive the HTTP front end multiplexes hundreds of
//!   keep-alive connections on). It accepts registrations, runs a small
//!   per-worker state machine over each connection's read/write halves,
//!   and — the v4 push model — keeps every worker topped up with a
//!   **credit window** of [`CoordinatorConfig::pipeline`] outstanding
//!   chunk leases, granting refills the moment results or expiries free
//!   credits. 64 workers are 64 pollfds, not 64 threads, and an idle
//!   worker costs nothing (no `Ready`/`Wait` chatter).
//! * **Submitter** — the thread inside [`Coordinator::run_sweep`]: posts
//!   the job, expires overdue leases, and **drains chunks locally
//!   whenever no worker is connected**, which is both the
//!   `--min-workers` degrade path and the guarantee that a sweep
//!   terminates even if every worker dies.
//!
//! Cross-thread wakes go through the poller's self-pipe [`Waker`]: a
//! submitter posting a job kicks the driver out of its sleep so the
//! first grants leave immediately, not on the next tick.
//!
//! ## Failure model
//!
//! A worker is presumed dead when its connection drops, when it stays
//! silent past the lease TTL (missed heartbeats), or when it refuses a
//! lease. In every case its **entire outstanding window** returns to the
//! pending queue ([`LeaseTracker::fail_worker`]) and the next refill
//! tick routes those chunks to surviving workers — or the local drain.
//! Duplicate results from resurrected workers are ignored; chunk values
//! are pure functions of the grid point, so whichever copy lands first
//! produces identical bytes, and the merged output stays byte-identical
//! to a local run under any kill/retry interleaving.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::io::{self, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::lease::{ChunkId, Completion, LeaseTracker, WorkerId};
use crate::proto::{ChunkLease, FrameReader, Message, SweepAxes, PROTOCOL_VERSION};
use twocs_core::sweep::{eval_chunk, set_parallelism, GridExecutor, GridSweep, PointResults};
use twocs_core::{GridIndex, Table};
use twocs_hw::DeviceSpec;
use twocs_serve::poll::{Interest, Poller, Source, Waker};

/// Worker id the coordinator uses when draining chunks itself.
pub const LOCAL_WORKER: WorkerId = 0;

/// Tuning knobs for one [`Coordinator`].
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Address to bind for worker registrations (`:0` picks an ephemeral
    /// port, reported by [`Coordinator::local_addr`]).
    pub listen: String,
    /// Grid points per leased chunk. Smaller chunks rebalance better and
    /// lose less work to a dead worker; larger chunks amortize framing.
    pub chunk_size: usize,
    /// Interval workers are told to heartbeat at.
    pub heartbeat: Duration,
    /// Silence budget before a worker's leases are reassigned. Should be
    /// a few heartbeats; clamped to at least one.
    pub lease_ttl: Duration,
    /// Thread budget for the local drain / degrade path.
    pub local_jobs: usize,
    /// Credit window: chunk leases kept outstanding per worker. `1`
    /// degenerates to lockstep (one chunk per round-trip); the default
    /// of 4 hides a full network round-trip behind roughly three chunks
    /// of computation.
    pub pipeline: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_owned(),
            chunk_size: 4,
            heartbeat: Duration::from_millis(500),
            lease_ttl: Duration::from_secs(2),
            local_jobs: 1,
            pipeline: 4,
        }
    }
}

/// What one distributed sweep did, for the stderr summary.
#[derive(Debug, Clone)]
pub struct DistSummary {
    /// Total chunks in the job.
    pub chunks: usize,
    /// Total grid points.
    pub points: usize,
    /// Chunk-to-pending reassignments (worker deaths, expiries, refusals).
    pub reassigned: u64,
    /// Workers that registered over the fabric's lifetime so far.
    pub workers_seen: u64,
    /// Per-evaluator chunk counts and busy time (grant-to-result time
    /// for remote workers, evaluation time for [`LOCAL_WORKER`]).
    pub per_worker: Vec<(WorkerId, u64, Duration)>,
    /// Protocol bytes sent by the coordinator during this sweep.
    pub bytes_tx: u64,
    /// Protocol bytes received by the coordinator during this sweep.
    pub bytes_rx: u64,
    /// End-to-end wall time of the sweep.
    pub wall: Duration,
}

impl fmt::Display for DistSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dist: {} points in {} chunks, wall {:.1?}; {} reassigned, {} worker(s) seen, wire {} B out / {} B in",
            self.points,
            self.chunks,
            self.wall,
            self.reassigned,
            self.workers_seen,
            self.bytes_tx,
            self.bytes_rx,
        )?;
        for (id, chunks, busy) in &self.per_worker {
            let who = if *id == LOCAL_WORKER {
                "local drain".to_owned()
            } else {
                format!("worker {id}")
            };
            write!(
                f,
                "\n  {who:<12} {chunks} chunk{} in {busy:.1?}",
                if *chunks == 1 { "" } else { "s" }
            )?;
        }
        Ok(())
    }
}

/// Per-evaluator accounting for the job in flight.
#[derive(Debug, Clone, Copy, Default)]
struct EvalStats {
    chunks: u64,
    busy: Duration,
}

/// Where a job's accepted chunk results go.
enum JobOutput {
    /// Classic mode: per-point slots in grid order, materialized up
    /// front and unwrapped by `finish_job` — RAM scales with the grid.
    Memory(Vec<Option<Result<(f64, f64), String>>>),
    /// Streaming mode: accepted chunks are handed (outside the fabric
    /// lock) to the submitter thread, which owns the receiving end and
    /// records them into its sink/journal — coordinator RAM stays
    /// bounded by the channel, not the grid.
    Stream(SyncSender<(ChunkId, PointResults)>),
}

/// One sweep job being distributed. The grid is held as a lazy
/// [`GridIndex`] — chunk points are decoded on demand at grant time, so
/// posting a million-point job does not materialize a million points.
struct ActiveJob {
    id: u64,
    device_name: String,
    device_fingerprint: u64,
    sweep: GridSweep,
    grid_fingerprint: u64,
    index: GridIndex,
    chunk_size: usize,
    n_chunks: u32,
    tracker: LeaseTracker,
    output: JobOutput,
    stats: BTreeMap<WorkerId, EvalStats>,
}

impl ActiveJob {
    /// Points in `chunk` (the final chunk may be short).
    fn chunk_len(&self, chunk: ChunkId) -> usize {
        let start = chunk as usize * self.chunk_size;
        self.index.len().saturating_sub(start).min(self.chunk_size)
    }

    /// A grant frame carrying `leases`, with the job-level context
    /// (device, axes, fingerprints) attached once for the whole window.
    fn grant_message(&self, leases: Vec<ChunkLease>) -> Message {
        Message::Grant {
            job: self.id,
            device: self.device_name.clone(),
            device_fingerprint: self.device_fingerprint,
            batch: self.sweep.batch,
            method: self.sweep.method,
            workload: self.sweep.workload,
            axes: Box::new(SweepAxes::from_sweep(&self.sweep)),
            grid_fingerprint: self.grid_fingerprint,
            leases,
        }
    }
}

struct FabricState {
    job: Option<ActiveJob>,
    next_job: u64,
    /// Currently connected worker ids.
    connected: BTreeSet<WorkerId>,
    next_worker: WorkerId,
    total_joined: u64,
    shutdown: bool,
}

struct Shared {
    cfg: CoordinatorConfig,
    epoch: Instant,
    state: Mutex<FabricState>,
    /// Signaled when the job advances or the worker set changes.
    progress: Condvar,
    /// The driver's poller, owned here so its self-pipe outlives every
    /// [`Shared::kick`] caller; the driver thread borrows it to wait.
    poller: Poller,
    /// Wake handle for the driver's poll loop.
    waker: Waker,
    bytes_tx: AtomicU64,
    bytes_rx: AtomicU64,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, FabricState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Interrupt the driver's poll wait — work was posted, chunks were
    /// requeued, or shutdown began.
    fn kick(&self) {
        self.waker.wake();
    }

    /// Milliseconds since the coordinator started — the lease clock.
    fn now(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn ttl_ms(&self) -> u64 {
        self.cfg.lease_ttl.as_millis().max(1) as u64
    }

    fn count_tx(&self, n: usize) {
        self.bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
        twocs_obs::metrics::global()
            .counter("dist.bytes_tx")
            .add(n as u64);
    }

    fn count_rx(&self, n: usize) {
        self.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
        twocs_obs::metrics::global()
            .counter("dist.bytes_rx")
            .add(n as u64);
    }
}

/// A live distributed-sweep fabric: an address workers can register
/// with, plus [`Coordinator::run_sweep`] to shard grids across them.
///
/// The fabric is long-lived: one coordinator can run many sweeps
/// back-to-back (that is how `twocs serve --listen` uses it), workers
/// may join at any time — including mid-sweep — and leave without
/// losing work.
pub struct Coordinator {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    driver_handle: Option<JoinHandle<()>>,
}

impl fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Coordinator")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

/// Fallback poll timeout: the driver also wakes on socket readiness and
/// [`Shared::kick`], so this only bounds lease-expiry detection latency.
const POLL: Duration = Duration::from_millis(25);

/// How long a fresh connection gets to complete the `Hello` handshake.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Streaming backpressure: the driver stops granting fresh leases while
/// this many accepted chunks await hand-off to the submitter.
const BACKLOG_HIGH_WATER: usize = 256;

impl Coordinator {
    /// Bind the listen address and start accepting workers immediately.
    pub fn bind(cfg: CoordinatorConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let poller = Poller::new()?;
        let waker = poller.waker();
        let shared = Arc::new(Shared {
            cfg,
            epoch: Instant::now(),
            state: Mutex::new(FabricState {
                job: None,
                next_job: 1,
                connected: BTreeSet::new(),
                next_worker: LOCAL_WORKER + 1,
                total_joined: 0,
                shutdown: false,
            }),
            progress: Condvar::new(),
            poller,
            waker,
            bytes_tx: AtomicU64::new(0),
            bytes_rx: AtomicU64::new(0),
        });
        let driver_shared = Arc::clone(&shared);
        let driver_handle = std::thread::Builder::new()
            .name("dist-driver".to_owned())
            .spawn(move || driver_loop(&driver_shared, &listener))?;
        Ok(Self {
            shared,
            local_addr,
            driver_handle: Some(driver_handle),
        })
    }

    /// The actual bound address (resolves `:0` ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Currently connected workers.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.shared.lock().connected.len()
    }

    /// Total protocol bytes this fabric has sent and received since
    /// binding — the coordinator's side of the wire-accounting ledger
    /// that [`crate::WorkerReport`] keeps for each worker.
    #[must_use]
    pub fn wire_totals(&self) -> (u64, u64) {
        (
            self.shared.bytes_tx.load(Ordering::Relaxed),
            self.shared.bytes_rx.load(Ordering::Relaxed),
        )
    }

    /// Block until at least `min` workers are connected or `timeout`
    /// elapses; returns the count at that moment. `min == 0` returns
    /// immediately — the caller degrades to local execution either way,
    /// via the submitter's local drain.
    pub fn wait_for_workers(&self, min: usize, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if st.connected.len() >= min || st.shutdown {
                return st.connected.len();
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return st.connected.len();
            };
            let (g, _) = self
                .shared
                .progress
                .wait_timeout(st, remaining.min(POLL * 4))
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
    }

    /// Distribute `sweep` across the connected workers and tabulate the
    /// outcome, byte-identical to a local [`GridSweep::run`].
    ///
    /// Returns an error only when the fabric is shutting down or the
    /// grid is empty of realistic points — worker failures never fail
    /// the sweep, they just shift work back to the queue (ultimately to
    /// the coordinator's own local drain).
    pub fn run_sweep(
        &self,
        sweep: &GridSweep,
        device: &DeviceSpec,
    ) -> Result<(Table, DistSummary), String> {
        let points = sweep.points();
        let (results, summary) = self.execute_tracked(sweep, device)?;
        Ok((GridSweep::tabulate(&points, &results), summary))
    }

    /// Stop accepting workers, tell connected ones `Done`, and unblock
    /// every waiter. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.progress.notify_all();
        self.shared.kick();
    }

    /// Run one sweep through the fabric, returning per-point results in
    /// grid order plus the summary.
    fn execute_tracked(
        &self,
        sweep: &GridSweep,
        device: &DeviceSpec,
    ) -> Result<(PointResults, DistSummary), String> {
        let start = Instant::now();
        let shared = &self.shared;
        let metrics = twocs_obs::metrics::global();
        let _span = twocs_obs::span("distributed sweep", "dist");

        // Workers reconstruct the base device from the catalog; a device
        // the catalog cannot name (e.g. an already-evolved or custom
        // spec) cannot be shipped, so the whole job runs on the local
        // drain — still byte-identical, just not distributed.
        let resolvable = DeviceSpec::catalog()
            .iter()
            .any(|d| d.name() == device.name() && d.fingerprint() == device.fingerprint());

        let index = sweep.index();
        let chunk_size = shared.cfg.chunk_size.max(1);
        let n_chunks = index.chunk_count(chunk_size) as u32;
        let tx_before = shared.bytes_tx.load(Ordering::Relaxed);
        let rx_before = shared.bytes_rx.load(Ordering::Relaxed);

        let output = JobOutput::Memory(vec![None; index.len()]);
        let job_id = post_job(
            shared,
            sweep,
            device,
            index,
            chunk_size,
            output,
            resolvable,
            &BTreeSet::new(),
        )?;
        if !resolvable {
            // Drain everything locally: the tracker pre-leased every
            // chunk to LOCAL_WORKER at post time.
            for chunk in 0..n_chunks {
                drain_one_chunk(shared, job_id, chunk, device);
            }
            let mut st = shared.lock();
            let (results, summary) =
                finish_job(shared, &mut st, job_id, start, tx_before, rx_before);
            return Ok((results.expect("memory-mode job yields results"), summary));
        }

        // Supervise: expire overdue leases, drain locally when no worker
        // is connected, finish when the tracker says so. (The driver
        // also expires on its own tick; this is the belt to its
        // suspenders, and the only expiry path once every worker left.)
        let mut st = shared.lock();
        loop {
            let Some(job) = st.job.as_mut().filter(|j| j.id == job_id) else {
                return Err("sweep job vanished from the fabric".to_owned());
            };
            if job.tracker.is_complete() {
                let (results, summary) =
                    finish_job(shared, &mut st, job_id, start, tx_before, rx_before);
                return Ok((results.expect("memory-mode job yields results"), summary));
            }
            let now = shared.now();
            let expired = job.tracker.expire(now);
            if !expired.is_empty() {
                metrics
                    .counter("dist.chunks_reassigned")
                    .add(expired.len() as u64);
                shared.kick();
            }
            if st.connected.is_empty() && st.job.as_ref().unwrap().tracker.pending_count() > 0 {
                // Degrade path: nobody to grant to, so evaluate one
                // chunk here (outside the lock) and loop.
                let job = st.job.as_mut().unwrap();
                if let Some(chunk) = job.tracker.lease(LOCAL_WORKER, now, u64::MAX) {
                    drop(st);
                    drain_one_chunk(shared, job_id, chunk, device);
                    st = shared.lock();
                    continue;
                }
            }
            st = shared
                .progress
                .wait_timeout(st, POLL)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Distribute `sweep` with **streaming** result delivery: every
    /// accepted chunk is handed to `on_chunk` on this thread, in arrival
    /// order, instead of being materialized in coordinator memory — the
    /// contract million-point grids need. `chunk_size` fixes chunk-id
    /// meaning (a resumed journal must pass the journaled size, not the
    /// fabric default); chunks listed in `completed` are marked done up
    /// front and never evaluated (journal resume). Worker failures never
    /// fail the sweep; an `on_chunk` error aborts it.
    pub fn run_sweep_streaming(
        &self,
        sweep: &GridSweep,
        device: &DeviceSpec,
        chunk_size: usize,
        completed: &BTreeSet<ChunkId>,
        on_chunk: &mut dyn FnMut(ChunkId, PointResults) -> Result<(), String>,
    ) -> Result<DistSummary, String> {
        let start = Instant::now();
        let shared = &self.shared;
        let metrics = twocs_obs::metrics::global();
        let _span = twocs_obs::span("distributed sweep (streaming)", "dist");

        let resolvable = DeviceSpec::catalog()
            .iter()
            .any(|d| d.name() == device.name() && d.fingerprint() == device.fingerprint());
        let index = sweep.index();
        let chunk_size = chunk_size.max(1);
        let n_chunks = index.chunk_count(chunk_size) as u32;
        let to_receive = (0..n_chunks).filter(|c| !completed.contains(c)).count();
        let tx_before = shared.bytes_tx.load(Ordering::Relaxed);
        let rx_before = shared.bytes_rx.load(Ordering::Relaxed);

        // Bounded hand-off. The driver never blocks on it — accepted
        // chunks it cannot `try_send` sit in its backlog, and granting
        // pauses past the high-water mark; that backpressure is what
        // keeps coordinator RSS flat on million-point grids.
        let (tx, rx) = std::sync::mpsc::sync_channel::<(ChunkId, PointResults)>(64);
        let job_id = post_job(
            shared,
            sweep,
            device,
            index,
            chunk_size,
            JobOutput::Stream(tx),
            resolvable,
            completed,
        )?;

        let fail = |e: String| {
            // Abort: clear the job slot so workers stop leasing from it.
            let mut st = shared.lock();
            if st.job.as_ref().is_some_and(|j| j.id == job_id) {
                st.job = None;
            }
            drop(st);
            shared.progress.notify_all();
            shared.kick();
            e
        };

        let mut received = 0usize;
        let mut last_tick = Instant::now();
        if !resolvable {
            // Degrade path for unshippable devices: this thread is both
            // evaluator and recorder, bypassing the channel entirely.
            for chunk in (0..n_chunks).filter(|c| !completed.contains(c)) {
                if let Some((c, values)) = drain_one_chunk(shared, job_id, chunk, device) {
                    on_chunk(c, values).map_err(fail)?;
                    received += 1;
                }
            }
        }
        while received < to_receive {
            // 1. Drain results without holding the fabric lock; the
            // driver hands them over without holding it either.
            match rx.recv_timeout(POLL) {
                Ok((chunk, values)) => {
                    on_chunk(chunk, values).map_err(fail)?;
                    received += 1;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(fail("sweep job vanished from the fabric".to_owned()));
                }
            }
            // 2. Periodic tick: expire overdue leases; drain locally
            // when no worker is connected.
            if last_tick.elapsed() < POLL && received < to_receive {
                continue;
            }
            last_tick = Instant::now();
            let mut local: Option<ChunkId> = None;
            {
                let mut st = shared.lock();
                let Some(job) = st.job.as_mut().filter(|j| j.id == job_id) else {
                    return Err("sweep job vanished from the fabric".to_owned());
                };
                let now = shared.now();
                let expired = job.tracker.expire(now);
                if !expired.is_empty() {
                    metrics
                        .counter("dist.chunks_reassigned")
                        .add(expired.len() as u64);
                    shared.kick();
                }
                if st.connected.is_empty() {
                    let job = st.job.as_mut().unwrap();
                    if job.tracker.pending_count() > 0 {
                        local = job.tracker.lease(LOCAL_WORKER, now, u64::MAX);
                    }
                }
            }
            if let Some(chunk) = local {
                if let Some((c, values)) = drain_one_chunk(shared, job_id, chunk, device) {
                    on_chunk(c, values).map_err(fail)?;
                    received += 1;
                }
            }
        }
        let mut st = shared.lock();
        let (_none, summary) = finish_job(shared, &mut st, job_id, start, tx_before, rx_before);
        Ok(summary)
    }
}

/// Post a job into the fabric's single job slot (serializing
/// back-to-back sweeps), pre-completing resumed chunks and — for
/// devices the catalog cannot ship — pre-leasing everything to the
/// local drain. Returns the job id.
#[allow(clippy::too_many_arguments)]
fn post_job(
    shared: &Arc<Shared>,
    sweep: &GridSweep,
    device: &DeviceSpec,
    index: GridIndex,
    chunk_size: usize,
    output: JobOutput,
    resolvable: bool,
    completed: &BTreeSet<ChunkId>,
) -> Result<u64, String> {
    let n_chunks = index.chunk_count(chunk_size) as u32;
    let mut st = shared.lock();
    loop {
        if st.shutdown {
            return Err("the fabric is shutting down".to_owned());
        }
        if st.job.is_none() {
            break;
        }
        st = shared
            .progress
            .wait_timeout(st, POLL * 4)
            .unwrap_or_else(PoisonError::into_inner)
            .0;
    }
    let id = st.next_job;
    st.next_job += 1;
    let mut tracker = LeaseTracker::new(n_chunks);
    for &chunk in completed {
        // Journal-recovered chunks: completing a pending chunk is the
        // tracker's resume mechanism.
        tracker.complete(chunk);
    }
    if !resolvable {
        // Pre-empt granting to remote workers: the local drain is the
        // only evaluator that has this device.
        while tracker.lease(LOCAL_WORKER, 0, u64::MAX).is_some() {}
    }
    st.job = Some(ActiveJob {
        id,
        device_name: device.name().to_owned(),
        device_fingerprint: device.fingerprint(),
        grid_fingerprint: sweep.fingerprint(),
        sweep: sweep.clone(),
        index,
        chunk_size,
        n_chunks,
        tracker,
        output,
        stats: BTreeMap::new(),
    });
    drop(st);
    // Wake the driver so the first grants leave this tick, not the next.
    shared.kick();
    Ok(id)
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.driver_handle.take() {
            let _ = handle.join();
        }
    }
}

impl GridExecutor for Coordinator {
    fn execute(&self, sweep: &GridSweep, device: &DeviceSpec) -> Result<PointResults, String> {
        self.execute_tracked(sweep, device).map(|(r, _)| r)
    }

    fn describe(&self) -> String {
        format!("distributed({})", self.local_addr)
    }
}

/// What [`record_result`] did with an arriving chunk, and what the
/// caller must do next **after releasing the fabric lock**.
enum Recorded {
    /// Duplicate, stale, or malformed: dropped.
    Rejected,
    /// Accepted and stored in the in-memory result slots.
    Stored,
    /// Accepted in streaming mode: the caller must hand `(chunk,
    /// values)` to the submitter over `sender` outside the lock — the
    /// driver parks it in its backlog and `try_send`s, never blocking.
    Deliver(SyncSender<(ChunkId, PointResults)>, ChunkId, PointResults),
}

/// Evaluate one locally-leased chunk on `device` and record its
/// results. The chunk must already be leased to [`LOCAL_WORKER`];
/// evaluation happens with no fabric lock held. `device` is the
/// submitter's own spec, so this path works for devices the catalog
/// cannot name.
///
/// In streaming mode the accepted values are **returned** instead of
/// sent: the caller is the submitter thread itself — the channel's only
/// drainer — so sending here could deadlock against a full channel.
fn drain_one_chunk(
    shared: &Arc<Shared>,
    job_id: u64,
    chunk: ChunkId,
    device: &DeviceSpec,
) -> Option<(ChunkId, PointResults)> {
    let (points, batch, method, workload) = {
        let st = shared.lock();
        let job = st.job.as_ref().filter(|j| j.id == job_id)?;
        (
            job.index.chunk_points(chunk as usize, job.chunk_size),
            job.sweep.batch,
            job.sweep.method,
            job.sweep.workload,
        )
    };
    let _span = twocs_obs::span(&format!("local drain chunk {chunk}"), "dist");
    let t0 = Instant::now();
    set_parallelism(shared.cfg.local_jobs);
    // Same chunk kernel the workers use: factored when possible, naive
    // otherwise, per-point panics degraded to per-point errors.
    let values: PointResults = eval_chunk(device, &points, batch, method, workload);
    let busy = t0.elapsed();
    twocs_obs::metrics::global()
        .counter("dist.local_drain_chunks")
        .inc();
    let mut st = shared.lock();
    let recorded = record_result(&mut st, job_id, LOCAL_WORKER, chunk, values, busy);
    drop(st);
    shared.progress.notify_all();
    match recorded {
        Recorded::Deliver(_tx, chunk, values) => Some((chunk, values)),
        Recorded::Stored | Recorded::Rejected => None,
    }
}

/// Accept a chunk result into the job, update per-evaluator stats, and
/// tell the caller how to deliver it (see [`Recorded`]).
fn record_result(
    st: &mut FabricState,
    job_id: u64,
    worker: WorkerId,
    chunk: ChunkId,
    values: PointResults,
    busy: Duration,
) -> Recorded {
    let Some(job) = st.job.as_mut().filter(|j| j.id == job_id) else {
        return Recorded::Rejected;
    };
    if chunk >= job.n_chunks || values.len() != job.chunk_len(chunk) {
        // A short or long result cannot be merged; treat it as a failed
        // evaluation and requeue via the normal failure path.
        return Recorded::Rejected;
    }
    match job.tracker.complete(chunk) {
        Completion::Accepted => {
            let stats = job.stats.entry(worker).or_default();
            stats.chunks += 1;
            stats.busy += busy;
            let metrics = twocs_obs::metrics::global();
            metrics.counter("dist.chunks_completed").inc();
            metrics
                .histogram("dist.chunk_rtt_us")
                .observe_duration(busy);
            match &mut job.output {
                JobOutput::Memory(results) => {
                    let start = chunk as usize * job.chunk_size;
                    for (i, v) in values.into_iter().enumerate() {
                        results[start + i] = Some(v);
                    }
                    Recorded::Stored
                }
                JobOutput::Stream(tx) => Recorded::Deliver(tx.clone(), chunk, values),
            }
        }
        Completion::Duplicate | Completion::Unknown => Recorded::Rejected,
    }
}

/// Collect the finished job into results + summary and clear the slot.
/// Memory-mode jobs yield `Some(results)`; streaming jobs have already
/// delivered everything and yield `None`.
fn finish_job(
    shared: &Shared,
    st: &mut FabricState,
    job_id: u64,
    start: Instant,
    tx_before: u64,
    rx_before: u64,
) -> (Option<PointResults>, DistSummary) {
    let job = st
        .job
        .take()
        .filter(|j| j.id == job_id)
        .expect("finish_job called with the job in place");
    let points = job.index.len();
    let results: Option<PointResults> = match job.output {
        JobOutput::Memory(results) => Some(
            results
                .into_iter()
                .map(|r| r.expect("completed job has every point filled"))
                .collect(),
        ),
        JobOutput::Stream(_) => None,
    };
    let summary = DistSummary {
        chunks: job.n_chunks as usize,
        points,
        reassigned: job.tracker.reassigned(),
        workers_seen: st.total_joined,
        per_worker: job
            .stats
            .iter()
            .map(|(&id, s)| (id, s.chunks, s.busy))
            .collect(),
        bytes_tx: shared.bytes_tx.load(Ordering::Relaxed) - tx_before,
        bytes_rx: shared.bytes_rx.load(Ordering::Relaxed) - rx_before,
        wall: start.elapsed(),
    };
    // Wake any submitter waiting for the job slot.
    shared.progress.notify_all();
    (results, summary)
}

// ---- the poll-driven connection driver ---------------------------------

/// An accepted chunk awaiting `try_send` to the streaming submitter.
type Delivery = (SyncSender<(ChunkId, PointResults)>, ChunkId, PointResults);

/// One worker connection's state machine, driven by readiness events.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    /// Pending outgoing bytes; `out_at` is the flushed prefix. Frames
    /// are appended in place ([`Message::append_frame`]), so steady
    /// state reuses the allocation.
    outbuf: Vec<u8>,
    out_at: usize,
    /// Assigned worker id once the handshake completes.
    worker: Option<WorkerId>,
    /// `Done`/`Reject` queued: flush, half-close, then wait for the
    /// peer's EOF (a hard close could RST ahead of the peer reading it).
    closing: bool,
    half_closed: bool,
    /// Connection is finished; the removal pass cleans it up.
    dead: bool,
    /// Close the connection at this instant regardless (handshake and
    /// drain timeouts).
    deadline: Option<Instant>,
    /// When each outstanding chunk was granted, for grant-to-result
    /// timing in the per-worker stats.
    grant_times: BTreeMap<(u64, ChunkId), Instant>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            reader: FrameReader::new(),
            outbuf: Vec::new(),
            out_at: 0,
            worker: None,
            closing: false,
            half_closed: false,
            dead: false,
            deadline: Some(Instant::now() + HANDSHAKE_TIMEOUT),
            grant_times: BTreeMap::new(),
        }
    }

    fn has_output(&self) -> bool {
        self.out_at < self.outbuf.len()
    }

    /// Append a frame to the outbound buffer (counted as sent once
    /// queued; the flush pass moves it onto the wire).
    fn queue(&mut self, shared: &Shared, msg: &Message) {
        let n = msg.append_frame(&mut self.outbuf);
        shared.count_tx(n);
    }

    /// Write as much pending output as the socket accepts right now.
    fn flush(&mut self) {
        while self.out_at < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_at..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.out_at += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.outbuf.clear();
        self.out_at = 0;
        if self.closing && !self.half_closed {
            self.half_closed = true;
            let _ = self.stream.shutdown(Shutdown::Write);
        }
    }
}

/// The fabric's single connection-driver thread: poll readiness, accept,
/// read/decode frames, refill credit windows, flush. Exits once shutdown
/// is requested and every connection has drained.
fn driver_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut backlog: VecDeque<Delivery> = VecDeque::new();
    let mut done_sent = false;
    loop {
        let shutting_down = shared.lock().shutdown;
        if shutting_down && !done_sent {
            done_sent = true;
            let deadline = Instant::now() + shared.cfg.lease_ttl.max(Duration::from_secs(1));
            for conn in &mut conns {
                if conn.worker.is_some() && !conn.closing {
                    conn.queue(shared, &Message::Done);
                    conn.closing = true;
                }
                let capped = conn.deadline.map_or(deadline, |d| d.min(deadline));
                conn.deadline = Some(capped);
            }
        }
        if shutting_down && conns.is_empty() {
            return;
        }

        let sources: Vec<Source> = conns
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.dead)
            .map(|(i, c)| {
                Source::new(
                    i as u64,
                    &c.stream,
                    Interest {
                        read: true,
                        write: c.has_output(),
                    },
                )
            })
            .collect();
        let wait = match shared
            .poller
            .wait((!shutting_down).then_some(listener), &sources, POLL)
        {
            Ok(w) => w,
            Err(_) => {
                // poll(2) itself failing is pathological; back off so a
                // persistent error cannot spin the core.
                std::thread::sleep(POLL);
                continue;
            }
        };

        if wait.listener_ready {
            accept_all(listener, &mut conns);
        }
        for ev in &wait.events {
            let Some(conn) = conns.get_mut(ev.token as usize) else {
                continue;
            };
            if (ev.readable || ev.hangup) && !conn.dead {
                read_conn(shared, conn, &mut backlog);
            }
            if ev.writable && !conn.dead {
                conn.flush();
            }
        }

        tick(shared, &mut conns, backlog.len());
        flush_backlog(&mut backlog);
        // Opportunistic flush: push frames queued by reads/tick now
        // instead of waiting for the next writable event.
        for conn in &mut conns {
            if !conn.dead && conn.has_output() {
                conn.flush();
            }
        }

        // Removal pass: reap dead and deadline-overdue connections,
        // requeueing each one's entire outstanding window.
        let now = Instant::now();
        let mut removed = false;
        conns.retain_mut(|conn| {
            if conn.deadline.is_some_and(|d| d <= now) {
                conn.dead = true;
            }
            if conn.dead {
                cleanup_conn(shared, conn);
                removed = true;
                false
            } else {
                true
            }
        });
        if removed {
            shared.progress.notify_all();
        }
    }
}

/// Accept every pending registration (the listener is nonblocking).
fn accept_all(listener: &TcpListener, conns: &mut Vec<Conn>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(true);
                let _ = stream.set_nodelay(true);
                conns.push(Conn::new(stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Pull bytes until the socket would block, handling every complete
/// frame along the way.
fn read_conn(shared: &Arc<Shared>, conn: &mut Conn, backlog: &mut VecDeque<Delivery>) {
    loop {
        match conn.reader.fill(&mut conn.stream) {
            Ok(0) => {
                // EOF: graceful after a drain, a death otherwise —
                // either way the removal pass takes it from here.
                conn.dead = true;
                return;
            }
            Ok(_) => loop {
                match conn.reader.next_frame() {
                    Ok(Some((msg, n))) => {
                        shared.count_rx(n);
                        if !handle_frame(shared, conn, msg, backlog) {
                            conn.dead = true;
                            return;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        conn.dead = true;
                        return;
                    }
                }
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// One frame's worth of the per-worker state machine. Returns `false`
/// when the connection must be treated as dead (protocol violation).
fn handle_frame(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    msg: Message,
    backlog: &mut VecDeque<Delivery>,
) -> bool {
    let metrics = twocs_obs::metrics::global();
    match (conn.worker, msg) {
        (
            None,
            Message::Hello {
                version: PROTOCOL_VERSION,
            },
        ) => {
            let worker_id = {
                let mut st = shared.lock();
                if st.shutdown {
                    drop(st);
                    conn.queue(
                        shared,
                        &Message::Reject {
                            reason: "coordinator is shutting down".to_owned(),
                        },
                    );
                    conn.closing = true;
                    conn.deadline = Some(Instant::now() + Duration::from_secs(1));
                    return true;
                }
                let id = st.next_worker;
                st.next_worker += 1;
                st.connected.insert(id);
                st.total_joined += 1;
                id
            };
            shared.progress.notify_all();
            metrics.counter("dist.workers_joined").inc();
            conn.worker = Some(worker_id);
            conn.deadline = None;
            let heartbeat_ms = shared
                .cfg
                .heartbeat
                .as_millis()
                .clamp(1, u128::from(u32::MAX)) as u32;
            let pipeline = shared.cfg.pipeline.clamp(1, u32::MAX as usize) as u32;
            conn.queue(
                shared,
                &Message::Welcome {
                    version: PROTOCOL_VERSION,
                    worker_id,
                    heartbeat_ms,
                    pipeline,
                },
            );
            // The next tick (this same driver iteration) grants the
            // fresh worker its first credit window.
            true
        }
        (None, Message::Hello { version }) => {
            conn.queue(
                shared,
                &Message::Reject {
                    reason: format!(
                        "protocol version mismatch: coordinator speaks v{PROTOCOL_VERSION}, worker v{version}"
                    ),
                },
            );
            metrics.counter("dist.handshake_rejected").inc();
            conn.closing = true;
            conn.deadline = Some(Instant::now() + Duration::from_secs(1));
            true
        }
        (None, _) => false, // not a worker; drop silently
        (Some(worker), Message::Heartbeat) => {
            let mut st = shared.lock();
            let now = shared.now();
            let ttl_ms = shared.ttl_ms();
            if let Some(job) = st.job.as_mut() {
                job.tracker.renew(worker, now, ttl_ms);
            }
            true
        }
        (
            Some(worker),
            Message::ChunkResult {
                job: jid,
                chunk,
                values,
            },
        ) => {
            let busy = conn
                .grant_times
                .remove(&(jid, chunk))
                .map_or(Duration::ZERO, |t0| t0.elapsed());
            let recorded = {
                let mut st = shared.lock();
                // A result is proof of life for the rest of the window.
                let now = shared.now();
                let ttl_ms = shared.ttl_ms();
                if let Some(job) = st.job.as_mut() {
                    job.tracker.renew(worker, now, ttl_ms);
                }
                record_result(&mut st, jid, worker, chunk, values, busy)
            };
            shared.progress.notify_all();
            if let Recorded::Deliver(tx, c, v) = recorded {
                // Never block the driver on the streaming channel: park
                // the chunk; `flush_backlog` try_sends after the lock.
                backlog.push_back((tx, c, v));
            }
            true
        }
        (Some(worker), Message::Refuse { reason, .. }) => {
            // The worker cannot evaluate this job at all (e.g. unknown
            // device). Requeue its whole window and release it.
            metrics.counter("dist.leases_refused").inc();
            let lost = {
                let mut st = shared.lock();
                st.connected.remove(&worker);
                st.job
                    .as_mut()
                    .map(|job| job.tracker.fail_worker(worker))
                    .unwrap_or_default()
            };
            if !lost.is_empty() {
                metrics
                    .counter("dist.chunks_reassigned")
                    .add(lost.len() as u64);
            }
            shared.progress.notify_all();
            let _ = reason;
            if !conn.closing {
                conn.queue(shared, &Message::Done);
                conn.closing = true;
            }
            conn.deadline = Some(Instant::now() + shared.cfg.lease_ttl.max(Duration::from_secs(1)));
            true
        }
        (Some(_), _) => false, // protocol violation
    }
}

/// The driver's periodic/maintenance pass: expire overdue leases, top
/// every live worker back up to its credit window, and publish the
/// outstanding-lease gauge.
fn tick(shared: &Arc<Shared>, conns: &mut [Conn], backlog_len: usize) {
    let metrics = twocs_obs::metrics::global();
    let mut st = shared.lock();
    let now = shared.now();
    let ttl_ms = shared.ttl_ms();
    if let Some(job) = st.job.as_mut() {
        let expired = job.tracker.expire(now);
        if !expired.is_empty() {
            metrics
                .counter("dist.chunks_reassigned")
                .add(expired.len() as u64);
        }
    }
    // Credit refill — paused while the streaming backlog is over the
    // high-water mark, which is the grant-side half of backpressure.
    if backlog_len < BACKLOG_HIGH_WATER && !st.shutdown {
        let window = shared.cfg.pipeline.max(1);
        for conn in conns.iter_mut().filter(|c| !c.dead && !c.closing) {
            let Some(worker) = conn.worker else { continue };
            let Some(job) = st.job.as_mut() else { break };
            let deficit = window.saturating_sub(job.tracker.outstanding(worker));
            let mut chunks = Vec::with_capacity(deficit);
            for _ in 0..deficit {
                match job.tracker.lease(worker, now, ttl_ms) {
                    Some(c) => chunks.push(c),
                    None => break,
                }
            }
            if chunks.is_empty() {
                continue;
            }
            let leases: Vec<ChunkLease> = chunks
                .iter()
                .map(|&c| ChunkLease {
                    chunk: c,
                    points: job.index.chunk_points(c as usize, job.chunk_size),
                })
                .collect();
            let issued = Instant::now();
            let job_id = job.id;
            // Stale timing entries from earlier jobs die with the grant.
            conn.grant_times.retain(|(j, _), _| *j == job_id);
            for &c in &chunks {
                conn.grant_times.insert((job_id, c), issued);
            }
            metrics
                .counter("dist.chunks_leased")
                .add(chunks.len() as u64);
            let grant = job.grant_message(leases);
            conn.queue(shared, &grant);
        }
    }
    let outstanding = st.job.as_ref().map_or(0, |j| j.tracker.leased_count());
    metrics
        .gauge("dist.coordinator.outstanding_leases")
        .set(outstanding as f64);
}

/// Hand parked streaming chunks to the submitter without blocking; stop
/// at the first full channel (order within the backlog is preserved).
fn flush_backlog(backlog: &mut VecDeque<Delivery>) {
    while let Some((tx, chunk, values)) = backlog.pop_front() {
        match tx.try_send((chunk, values)) {
            Ok(()) => {}
            Err(TrySendError::Full((c, v))) => {
                backlog.push_front((tx, c, v));
                break;
            }
            // The submitter aborted the job; the values are moot.
            Err(TrySendError::Disconnected(_)) => {}
        }
    }
}

/// Deregister a finished/dead connection and requeue its outstanding
/// window. Idempotent with the `Refuse` path's early release.
fn cleanup_conn(shared: &Arc<Shared>, conn: &Conn) {
    let metrics = twocs_obs::metrics::global();
    let _ = conn.stream.shutdown(Shutdown::Both);
    let Some(worker) = conn.worker else {
        return; // never finished the handshake; nothing registered
    };
    let lost = {
        let mut st = shared.lock();
        st.connected.remove(&worker);
        st.job
            .as_mut()
            .map(|job| job.tracker.fail_worker(worker))
            .unwrap_or_default()
    };
    metrics.counter("dist.workers_lost").inc();
    if !lost.is_empty() {
        metrics
            .counter("dist.chunks_reassigned")
            .add(lost.len() as u64);
    }
}
