//! The sweep coordinator: accepts worker registrations over TCP, shards
//! a [`GridSweep`] into leased chunks, and merges results back in
//! deterministic grid order.
//!
//! ## Threads
//!
//! * **Accept thread** — nonblocking `accept` + poll sleep (the same
//!   pattern as `twocs-serve`); spawns one connection pair per worker.
//! * **Per-connection driver** — owns the write half: waits for the
//!   worker's `Ready`, leases a chunk under the fabric lock, awaits the
//!   result with a heartbeat-bounded timeout.
//! * **Per-connection reader** — blocks on the read half and relays
//!   frames to the driver over an `mpsc` channel, so the driver can wait
//!   on "message OR timeout" without platform `poll` FFI.
//! * **Submitter** — the thread inside [`Coordinator::run_sweep`]: posts
//!   the job, expires overdue leases, and **drains chunks locally
//!   whenever no worker is connected**, which is both the
//!   `--min-workers` degrade path and the guarantee that a sweep
//!   terminates even if every worker dies.
//!
//! ## Failure model
//!
//! A worker is presumed dead when its connection drops, when it stays
//! silent past the lease TTL (missed heartbeats), or when it refuses a
//! lease. In every case its leased chunks return to the pending queue
//! ([`LeaseTracker`]) and the next `Ready` worker — or the local drain —
//! picks them up. Duplicate results from resurrected workers are
//! ignored; chunk values are pure functions of the grid point, so
//! whichever copy lands first produces identical bytes.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::lease::{ChunkId, Completion, LeaseTracker, WorkerId};
use crate::proto::{read_frame, write_frame, Message, SweepAxes, PROTOCOL_VERSION};
use twocs_core::sweep::{eval_chunk, set_parallelism, GridExecutor, GridSweep, PointResults};
use twocs_core::{GridIndex, Table};
use twocs_hw::DeviceSpec;

/// Worker id the coordinator uses when draining chunks itself.
pub const LOCAL_WORKER: WorkerId = 0;

/// Tuning knobs for one [`Coordinator`].
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Address to bind for worker registrations (`:0` picks an ephemeral
    /// port, reported by [`Coordinator::local_addr`]).
    pub listen: String,
    /// Grid points per leased chunk. Smaller chunks rebalance better and
    /// lose less work to a dead worker; larger chunks amortize framing.
    pub chunk_size: usize,
    /// Interval workers are told to heartbeat at.
    pub heartbeat: Duration,
    /// Silence budget before a worker's leases are reassigned. Should be
    /// a few heartbeats; clamped to at least one.
    pub lease_ttl: Duration,
    /// Thread budget for the local drain / degrade path.
    pub local_jobs: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_owned(),
            chunk_size: 4,
            heartbeat: Duration::from_millis(500),
            lease_ttl: Duration::from_secs(2),
            local_jobs: 1,
        }
    }
}

/// What one distributed sweep did, for the stderr summary.
#[derive(Debug, Clone)]
pub struct DistSummary {
    /// Total chunks in the job.
    pub chunks: usize,
    /// Total grid points.
    pub points: usize,
    /// Chunk-to-pending reassignments (worker deaths, expiries, refusals).
    pub reassigned: u64,
    /// Workers that registered over the fabric's lifetime so far.
    pub workers_seen: u64,
    /// Per-evaluator chunk counts and busy time (lease round-trip for
    /// remote workers, evaluation time for [`LOCAL_WORKER`]).
    pub per_worker: Vec<(WorkerId, u64, Duration)>,
    /// Protocol bytes sent by the coordinator during this sweep.
    pub bytes_tx: u64,
    /// Protocol bytes received by the coordinator during this sweep.
    pub bytes_rx: u64,
    /// End-to-end wall time of the sweep.
    pub wall: Duration,
}

impl fmt::Display for DistSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dist: {} points in {} chunks, wall {:.1?}; {} reassigned, {} worker(s) seen, wire {} B out / {} B in",
            self.points,
            self.chunks,
            self.wall,
            self.reassigned,
            self.workers_seen,
            self.bytes_tx,
            self.bytes_rx,
        )?;
        for (id, chunks, busy) in &self.per_worker {
            let who = if *id == LOCAL_WORKER {
                "local drain".to_owned()
            } else {
                format!("worker {id}")
            };
            write!(
                f,
                "\n  {who:<12} {chunks} chunk{} in {busy:.1?}",
                if *chunks == 1 { "" } else { "s" }
            )?;
        }
        Ok(())
    }
}

/// Per-evaluator accounting for the job in flight.
#[derive(Debug, Clone, Copy, Default)]
struct EvalStats {
    chunks: u64,
    busy: Duration,
}

/// Where a job's accepted chunk results go.
enum JobOutput {
    /// Classic mode: per-point slots in grid order, materialized up
    /// front and unwrapped by `finish_job` — RAM scales with the grid.
    Memory(Vec<Option<Result<(f64, f64), String>>>),
    /// Streaming mode: accepted chunks are handed (outside the fabric
    /// lock) to the submitter thread, which owns the receiving end and
    /// records them into its sink/journal — coordinator RAM stays
    /// bounded by the channel, not the grid.
    Stream(SyncSender<(ChunkId, PointResults)>),
}

/// One sweep job being distributed. The grid is held as a lazy
/// [`GridIndex`] — chunk points are decoded on demand at lease time, so
/// posting a million-point job does not materialize a million points.
struct ActiveJob {
    id: u64,
    device_name: String,
    device_fingerprint: u64,
    sweep: GridSweep,
    grid_fingerprint: u64,
    index: GridIndex,
    chunk_size: usize,
    n_chunks: u32,
    tracker: LeaseTracker,
    output: JobOutput,
    stats: BTreeMap<WorkerId, EvalStats>,
}

impl ActiveJob {
    /// Points in `chunk` (the final chunk may be short).
    fn chunk_len(&self, chunk: ChunkId) -> usize {
        let start = chunk as usize * self.chunk_size;
        self.index.len().saturating_sub(start).min(self.chunk_size)
    }

    /// The lease message for `chunk`, decoding its points on demand.
    fn lease_message(&self, chunk: ChunkId) -> Message {
        Message::Lease {
            job: self.id,
            chunk,
            device: self.device_name.clone(),
            device_fingerprint: self.device_fingerprint,
            batch: self.sweep.batch,
            method: self.sweep.method,
            workload: self.sweep.workload,
            axes: Box::new(SweepAxes::from_sweep(&self.sweep)),
            grid_fingerprint: self.grid_fingerprint,
            points: self.index.chunk_points(chunk as usize, self.chunk_size),
        }
    }
}

struct FabricState {
    job: Option<ActiveJob>,
    next_job: u64,
    /// Currently connected worker ids.
    connected: std::collections::BTreeSet<WorkerId>,
    next_worker: WorkerId,
    total_joined: u64,
    shutdown: bool,
}

struct Shared {
    cfg: CoordinatorConfig,
    epoch: Instant,
    state: Mutex<FabricState>,
    /// Signaled when work may be available: job posted, chunks requeued,
    /// shutdown.
    work: Condvar,
    /// Signaled when the job advances or the worker set changes.
    progress: Condvar,
    bytes_tx: AtomicU64,
    bytes_rx: AtomicU64,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, FabricState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Milliseconds since the coordinator started — the lease clock.
    fn now(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn ttl_ms(&self) -> u64 {
        self.cfg.lease_ttl.as_millis().max(1) as u64
    }

    fn count_tx(&self, n: usize) {
        self.bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
        twocs_obs::metrics::global()
            .counter("dist.bytes_tx")
            .add(n as u64);
    }

    fn count_rx(&self, n: usize) {
        self.bytes_rx.fetch_add(n as u64, Ordering::Relaxed);
        twocs_obs::metrics::global()
            .counter("dist.bytes_rx")
            .add(n as u64);
    }
}

/// A live distributed-sweep fabric: an address workers can register
/// with, plus [`Coordinator::run_sweep`] to shard grids across them.
///
/// The fabric is long-lived: one coordinator can run many sweeps
/// back-to-back (that is how `twocs serve --listen` uses it), workers
/// may join at any time — including mid-sweep — and leave without
/// losing work.
pub struct Coordinator {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
}

impl fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Coordinator")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

/// Poll interval of the accept loop and the submitter's progress wait.
const POLL: Duration = Duration::from_millis(25);

impl Coordinator {
    /// Bind the listen address and start accepting workers immediately.
    pub fn bind(cfg: CoordinatorConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            epoch: Instant::now(),
            state: Mutex::new(FabricState {
                job: None,
                next_job: 1,
                connected: std::collections::BTreeSet::new(),
                next_worker: LOCAL_WORKER + 1,
                total_joined: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            progress: Condvar::new(),
            bytes_tx: AtomicU64::new(0),
            bytes_rx: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("dist-accept".to_owned())
            .spawn(move || accept_loop(&accept_shared, &listener))?;
        Ok(Self {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The actual bound address (resolves `:0` ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Currently connected workers.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.shared.lock().connected.len()
    }

    /// Block until at least `min` workers are connected or `timeout`
    /// elapses; returns the count at that moment. `min == 0` returns
    /// immediately — the caller degrades to local execution either way,
    /// via the submitter's local drain.
    pub fn wait_for_workers(&self, min: usize, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if st.connected.len() >= min || st.shutdown {
                return st.connected.len();
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return st.connected.len();
            };
            let (g, _) = self
                .shared
                .progress
                .wait_timeout(st, remaining.min(POLL * 4))
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
    }

    /// Distribute `sweep` across the connected workers and tabulate the
    /// outcome, byte-identical to a local [`GridSweep::run`].
    ///
    /// Returns an error only when the fabric is shutting down or the
    /// grid is empty of realistic points — worker failures never fail
    /// the sweep, they just shift work back to the queue (ultimately to
    /// the coordinator's own local drain).
    pub fn run_sweep(
        &self,
        sweep: &GridSweep,
        device: &DeviceSpec,
    ) -> Result<(Table, DistSummary), String> {
        let points = sweep.points();
        let (results, summary) = self.execute_tracked(sweep, device)?;
        Ok((GridSweep::tabulate(&points, &results), summary))
    }

    /// Stop accepting workers, tell connected ones `Done`, and unblock
    /// every waiter. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.progress.notify_all();
    }

    /// Run one sweep through the fabric, returning per-point results in
    /// grid order plus the summary.
    fn execute_tracked(
        &self,
        sweep: &GridSweep,
        device: &DeviceSpec,
    ) -> Result<(PointResults, DistSummary), String> {
        let start = Instant::now();
        let shared = &self.shared;
        let metrics = twocs_obs::metrics::global();
        let _span = twocs_obs::span("distributed sweep", "dist");

        // Workers reconstruct the base device from the catalog; a device
        // the catalog cannot name (e.g. an already-evolved or custom
        // spec) cannot be shipped, so the whole job runs on the local
        // drain — still byte-identical, just not distributed.
        let resolvable = DeviceSpec::catalog()
            .iter()
            .any(|d| d.name() == device.name() && d.fingerprint() == device.fingerprint());

        let index = sweep.index();
        let chunk_size = shared.cfg.chunk_size.max(1);
        let n_chunks = index.chunk_count(chunk_size) as u32;
        let tx_before = shared.bytes_tx.load(Ordering::Relaxed);
        let rx_before = shared.bytes_rx.load(Ordering::Relaxed);

        let output = JobOutput::Memory(vec![None; index.len()]);
        let job_id = post_job(
            shared,
            sweep,
            device,
            index,
            chunk_size,
            output,
            resolvable,
            &BTreeSet::new(),
        )?;
        if !resolvable {
            // Drain everything locally: the tracker pre-leased every
            // chunk to LOCAL_WORKER at post time.
            for chunk in 0..n_chunks {
                drain_one_chunk(shared, job_id, chunk, device);
            }
            let mut st = shared.lock();
            let (results, summary) =
                finish_job(shared, &mut st, job_id, start, tx_before, rx_before);
            return Ok((results.expect("memory-mode job yields results"), summary));
        }

        // Supervise: expire overdue leases, drain locally when no worker
        // is connected, finish when the tracker says so.
        let mut st = shared.lock();
        loop {
            let Some(job) = st.job.as_mut().filter(|j| j.id == job_id) else {
                return Err("sweep job vanished from the fabric".to_owned());
            };
            if job.tracker.is_complete() {
                let (results, summary) =
                    finish_job(shared, &mut st, job_id, start, tx_before, rx_before);
                return Ok((results.expect("memory-mode job yields results"), summary));
            }
            let now = shared.now();
            let expired = job.tracker.expire(now);
            if !expired.is_empty() {
                metrics
                    .counter("dist.chunks_reassigned")
                    .add(expired.len() as u64);
                shared.work.notify_all();
            }
            if st.connected.is_empty() && st.job.as_ref().unwrap().tracker.pending_count() > 0 {
                // Degrade path: nobody to lease to, so evaluate one
                // chunk here (outside the lock) and loop.
                let job = st.job.as_mut().unwrap();
                if let Some(chunk) = job.tracker.lease(LOCAL_WORKER, now, u64::MAX) {
                    drop(st);
                    drain_one_chunk(shared, job_id, chunk, device);
                    st = shared.lock();
                    continue;
                }
            }
            st = shared
                .progress
                .wait_timeout(st, POLL)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Distribute `sweep` with **streaming** result delivery: every
    /// accepted chunk is handed to `on_chunk` on this thread, in arrival
    /// order, instead of being materialized in coordinator memory — the
    /// contract million-point grids need. `chunk_size` fixes chunk-id
    /// meaning (a resumed journal must pass the journaled size, not the
    /// fabric default); chunks listed in `completed` are marked done up
    /// front and never evaluated (journal resume). Worker failures never
    /// fail the sweep; an `on_chunk` error aborts it.
    pub fn run_sweep_streaming(
        &self,
        sweep: &GridSweep,
        device: &DeviceSpec,
        chunk_size: usize,
        completed: &BTreeSet<ChunkId>,
        on_chunk: &mut dyn FnMut(ChunkId, PointResults) -> Result<(), String>,
    ) -> Result<DistSummary, String> {
        let start = Instant::now();
        let shared = &self.shared;
        let metrics = twocs_obs::metrics::global();
        let _span = twocs_obs::span("distributed sweep (streaming)", "dist");

        let resolvable = DeviceSpec::catalog()
            .iter()
            .any(|d| d.name() == device.name() && d.fingerprint() == device.fingerprint());
        let index = sweep.index();
        let chunk_size = chunk_size.max(1);
        let n_chunks = index.chunk_count(chunk_size) as u32;
        let to_receive = (0..n_chunks).filter(|c| !completed.contains(c)).count();
        let tx_before = shared.bytes_tx.load(Ordering::Relaxed);
        let rx_before = shared.bytes_rx.load(Ordering::Relaxed);

        // Bounded hand-off: senders (connection drivers) block when this
        // thread falls behind, which is exactly the backpressure that
        // keeps coordinator RSS flat. Capacity is a small reorder
        // window, not a function of grid size.
        let (tx, rx) = std::sync::mpsc::sync_channel::<(ChunkId, PointResults)>(64);
        let job_id = post_job(
            shared,
            sweep,
            device,
            index,
            chunk_size,
            JobOutput::Stream(tx),
            resolvable,
            completed,
        )?;

        let fail = |e: String| {
            // Abort: clear the job slot so workers stop leasing from it.
            let mut st = shared.lock();
            if st.job.as_ref().is_some_and(|j| j.id == job_id) {
                st.job = None;
            }
            drop(st);
            shared.progress.notify_all();
            e
        };

        let mut received = 0usize;
        let mut last_tick = Instant::now();
        if !resolvable {
            // Degrade path for unshippable devices: this thread is both
            // evaluator and recorder, bypassing the channel entirely.
            for chunk in (0..n_chunks).filter(|c| !completed.contains(c)) {
                if let Some((c, values)) = drain_one_chunk(shared, job_id, chunk, device) {
                    on_chunk(c, values).map_err(fail)?;
                    received += 1;
                }
            }
        }
        while received < to_receive {
            // 1. Drain results without holding the fabric lock; the
            // senders hold it only long enough to mark completion.
            match rx.recv_timeout(POLL) {
                Ok((chunk, values)) => {
                    on_chunk(chunk, values).map_err(fail)?;
                    received += 1;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(fail("sweep job vanished from the fabric".to_owned()));
                }
            }
            // 2. Periodic tick: expire overdue leases; drain locally
            // when no worker is connected.
            if last_tick.elapsed() < POLL && received < to_receive {
                continue;
            }
            last_tick = Instant::now();
            let mut local: Option<ChunkId> = None;
            {
                let mut st = shared.lock();
                let Some(job) = st.job.as_mut().filter(|j| j.id == job_id) else {
                    return Err("sweep job vanished from the fabric".to_owned());
                };
                let now = shared.now();
                let expired = job.tracker.expire(now);
                if !expired.is_empty() {
                    metrics
                        .counter("dist.chunks_reassigned")
                        .add(expired.len() as u64);
                    shared.work.notify_all();
                }
                if st.connected.is_empty() {
                    let job = st.job.as_mut().unwrap();
                    if job.tracker.pending_count() > 0 {
                        local = job.tracker.lease(LOCAL_WORKER, now, u64::MAX);
                    }
                }
            }
            if let Some(chunk) = local {
                if let Some((c, values)) = drain_one_chunk(shared, job_id, chunk, device) {
                    on_chunk(c, values).map_err(fail)?;
                    received += 1;
                }
            }
        }
        let mut st = shared.lock();
        let (_none, summary) = finish_job(shared, &mut st, job_id, start, tx_before, rx_before);
        Ok(summary)
    }
}

/// Post a job into the fabric's single job slot (serializing
/// back-to-back sweeps), pre-completing resumed chunks and — for
/// devices the catalog cannot ship — pre-leasing everything to the
/// local drain. Returns the job id.
#[allow(clippy::too_many_arguments)]
fn post_job(
    shared: &Arc<Shared>,
    sweep: &GridSweep,
    device: &DeviceSpec,
    index: GridIndex,
    chunk_size: usize,
    output: JobOutput,
    resolvable: bool,
    completed: &BTreeSet<ChunkId>,
) -> Result<u64, String> {
    let n_chunks = index.chunk_count(chunk_size) as u32;
    let mut st = shared.lock();
    loop {
        if st.shutdown {
            return Err("the fabric is shutting down".to_owned());
        }
        if st.job.is_none() {
            break;
        }
        st = shared
            .progress
            .wait_timeout(st, POLL * 4)
            .unwrap_or_else(PoisonError::into_inner)
            .0;
    }
    let id = st.next_job;
    st.next_job += 1;
    let mut tracker = LeaseTracker::new(n_chunks);
    for &chunk in completed {
        // Journal-recovered chunks: completing a pending chunk is the
        // tracker's resume mechanism.
        tracker.complete(chunk);
    }
    if !resolvable {
        // Pre-empt leasing by remote workers: the local drain is the
        // only evaluator that has this device.
        while tracker.lease(LOCAL_WORKER, 0, u64::MAX).is_some() {}
    }
    st.job = Some(ActiveJob {
        id,
        device_name: device.name().to_owned(),
        device_fingerprint: device.fingerprint(),
        grid_fingerprint: sweep.fingerprint(),
        sweep: sweep.clone(),
        index,
        chunk_size,
        n_chunks,
        tracker,
        output,
        stats: BTreeMap::new(),
    });
    drop(st);
    shared.work.notify_all();
    Ok(id)
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl GridExecutor for Coordinator {
    fn execute(&self, sweep: &GridSweep, device: &DeviceSpec) -> Result<PointResults, String> {
        self.execute_tracked(sweep, device).map(|(r, _)| r)
    }

    fn describe(&self) -> String {
        format!("distributed({})", self.local_addr)
    }
}

/// What [`record_result`] did with an arriving chunk, and what the
/// caller must do next **after releasing the fabric lock**.
enum Recorded {
    /// Duplicate, stale, or malformed: dropped.
    Rejected,
    /// Accepted and stored in the in-memory result slots.
    Stored,
    /// Accepted in streaming mode: the caller must hand `(chunk,
    /// values)` to the submitter over `sender` once the lock is
    /// dropped — sending under the lock could block on a full channel
    /// while the draining thread waits for that same lock.
    Deliver(SyncSender<(ChunkId, PointResults)>, ChunkId, PointResults),
}

/// Evaluate one locally-leased chunk on `device` and record its
/// results. The chunk must already be leased to [`LOCAL_WORKER`];
/// evaluation happens with no fabric lock held. `device` is the
/// submitter's own spec, so this path works for devices the catalog
/// cannot name.
///
/// In streaming mode the accepted values are **returned** instead of
/// sent: the caller is the submitter thread itself — the channel's only
/// drainer — so sending here could deadlock against a full channel.
fn drain_one_chunk(
    shared: &Arc<Shared>,
    job_id: u64,
    chunk: ChunkId,
    device: &DeviceSpec,
) -> Option<(ChunkId, PointResults)> {
    let (points, batch, method, workload) = {
        let st = shared.lock();
        let job = st.job.as_ref().filter(|j| j.id == job_id)?;
        (
            job.index.chunk_points(chunk as usize, job.chunk_size),
            job.sweep.batch,
            job.sweep.method,
            job.sweep.workload,
        )
    };
    let _span = twocs_obs::span(&format!("local drain chunk {chunk}"), "dist");
    let t0 = Instant::now();
    set_parallelism(shared.cfg.local_jobs);
    // Same chunk kernel the workers use: factored when possible, naive
    // otherwise, per-point panics degraded to per-point errors.
    let values: PointResults = eval_chunk(device, &points, batch, method, workload);
    let busy = t0.elapsed();
    twocs_obs::metrics::global()
        .counter("dist.local_drain_chunks")
        .inc();
    let mut st = shared.lock();
    let recorded = record_result(&mut st, job_id, LOCAL_WORKER, chunk, values, busy);
    drop(st);
    shared.progress.notify_all();
    match recorded {
        Recorded::Deliver(_tx, chunk, values) => Some((chunk, values)),
        Recorded::Stored | Recorded::Rejected => None,
    }
}

/// Accept a chunk result into the job, update per-evaluator stats, and
/// tell the caller how to deliver it (see [`Recorded`]).
fn record_result(
    st: &mut FabricState,
    job_id: u64,
    worker: WorkerId,
    chunk: ChunkId,
    values: PointResults,
    busy: Duration,
) -> Recorded {
    let Some(job) = st.job.as_mut().filter(|j| j.id == job_id) else {
        return Recorded::Rejected;
    };
    if chunk >= job.n_chunks || values.len() != job.chunk_len(chunk) {
        // A short or long result cannot be merged; treat it as a failed
        // evaluation and requeue via the normal failure path.
        return Recorded::Rejected;
    }
    match job.tracker.complete(chunk) {
        Completion::Accepted => {
            let stats = job.stats.entry(worker).or_default();
            stats.chunks += 1;
            stats.busy += busy;
            let metrics = twocs_obs::metrics::global();
            metrics.counter("dist.chunks_completed").inc();
            metrics
                .histogram("dist.chunk_rtt_us")
                .observe_duration(busy);
            match &mut job.output {
                JobOutput::Memory(results) => {
                    let start = chunk as usize * job.chunk_size;
                    for (i, v) in values.into_iter().enumerate() {
                        results[start + i] = Some(v);
                    }
                    Recorded::Stored
                }
                JobOutput::Stream(tx) => Recorded::Deliver(tx.clone(), chunk, values),
            }
        }
        Completion::Duplicate | Completion::Unknown => Recorded::Rejected,
    }
}

/// Collect the finished job into results + summary and clear the slot.
/// Memory-mode jobs yield `Some(results)`; streaming jobs have already
/// delivered everything and yield `None`.
fn finish_job(
    shared: &Shared,
    st: &mut FabricState,
    job_id: u64,
    start: Instant,
    tx_before: u64,
    rx_before: u64,
) -> (Option<PointResults>, DistSummary) {
    let job = st
        .job
        .take()
        .filter(|j| j.id == job_id)
        .expect("finish_job called with the job in place");
    let points = job.index.len();
    let results: Option<PointResults> = match job.output {
        JobOutput::Memory(results) => Some(
            results
                .into_iter()
                .map(|r| r.expect("completed job has every point filled"))
                .collect(),
        ),
        JobOutput::Stream(_) => None,
    };
    let summary = DistSummary {
        chunks: job.n_chunks as usize,
        points,
        reassigned: job.tracker.reassigned(),
        workers_seen: st.total_joined,
        per_worker: job
            .stats
            .iter()
            .map(|(&id, s)| (id, s.chunks, s.busy))
            .collect(),
        bytes_tx: shared.bytes_tx.load(Ordering::Relaxed) - tx_before,
        bytes_rx: shared.bytes_rx.load(Ordering::Relaxed) - rx_before,
        wall: start.elapsed(),
    };
    // Wake any submitter waiting for the job slot.
    shared.progress.notify_all();
    (results, summary)
}

/// Handshake a freshly accepted connection, then run its driver loop
/// until the worker leaves, dies, or the fabric shuts down. Cleanup —
/// deregistration and requeueing the worker's leases — is unconditional.
fn serve_connection(shared: &Arc<Shared>, mut conn: TcpStream) {
    let metrics = twocs_obs::metrics::global();
    let _ = conn.set_nodelay(true);
    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = conn.set_write_timeout(Some(Duration::from_secs(5)));

    // Version handshake.
    let hello = match read_frame(&mut conn) {
        Ok((msg, n)) => {
            shared.count_rx(n);
            msg
        }
        Err(_) => return,
    };
    match hello {
        Message::Hello {
            version: PROTOCOL_VERSION,
        } => {}
        Message::Hello { version } => {
            let reject = Message::Reject {
                reason: format!(
                    "protocol version mismatch: coordinator speaks v{PROTOCOL_VERSION}, worker v{version}"
                ),
            };
            if let Ok(n) = write_frame(&mut conn, &reject) {
                shared.count_tx(n);
            }
            metrics.counter("dist.handshake_rejected").inc();
            return;
        }
        _ => return, // not a worker; drop silently
    }

    // Register.
    let worker_id = {
        let mut st = shared.lock();
        if st.shutdown {
            let reject = Message::Reject {
                reason: "coordinator is shutting down".to_owned(),
            };
            if let Ok(n) = write_frame(&mut conn, &reject) {
                shared.count_tx(n);
            }
            return;
        }
        let id = st.next_worker;
        st.next_worker += 1;
        st.connected.insert(id);
        st.total_joined += 1;
        id
    };
    shared.progress.notify_all();
    metrics.counter("dist.workers_joined").inc();
    let heartbeat_ms = shared
        .cfg
        .heartbeat
        .as_millis()
        .clamp(1, u128::from(u32::MAX)) as u32;
    let welcome = Message::Welcome {
        version: PROTOCOL_VERSION,
        worker_id,
        heartbeat_ms,
    };
    let registered = match write_frame(&mut conn, &welcome) {
        Ok(n) => {
            shared.count_tx(n);
            true
        }
        Err(_) => false,
    };

    if registered {
        // Reader thread: relay frames into a channel so the driver can
        // wait on "message or timeout" without poll/epoll FFI.
        let (tx, rx) = std::sync::mpsc::channel::<Message>();
        let reader_shared = Arc::clone(shared);
        let reader_conn = conn.try_clone();
        let reader = reader_conn.ok().map(|mut rconn| {
            let _ = rconn.set_read_timeout(None);
            std::thread::spawn(move || {
                while let Ok((msg, n)) = read_frame(&mut rconn) {
                    reader_shared.count_rx(n);
                    if tx.send(msg).is_err() {
                        break;
                    }
                }
            })
        });
        if let Some(reader) = reader {
            match drive_worker(shared, worker_id, &mut conn, &rx) {
                Ok(()) => {
                    // Graceful exit: `Done` is on the wire. Half-close and
                    // drain the worker's final frames until it closes its
                    // end — a hard close with an unread heartbeat still
                    // buffered would RST ahead of the worker reading
                    // `Done`. The read timeout bounds the drain if the
                    // worker never closes.
                    let _ = conn.shutdown(Shutdown::Write);
                    let _ = conn
                        .set_read_timeout(Some(shared.cfg.lease_ttl.max(Duration::from_secs(1))));
                }
                Err(()) => {
                    // The worker is presumed dead; closing the socket
                    // unblocks the reader.
                    let _ = conn.shutdown(Shutdown::Both);
                }
            }
            let _ = reader.join();
            drop(rx);
        }
    }

    // Unconditional cleanup: deregister and requeue this worker's leases.
    let lost = {
        let mut st = shared.lock();
        st.connected.remove(&worker_id);
        st.job
            .as_mut()
            .map(|job| job.tracker.fail_worker(worker_id))
            .unwrap_or_default()
    };
    metrics.counter("dist.workers_lost").inc();
    if !lost.is_empty() {
        metrics
            .counter("dist.chunks_reassigned")
            .add(lost.len() as u64);
        shared.work.notify_all();
    }
    shared.progress.notify_all();
}

/// What the driver decided to send after consulting the fabric state.
enum Directive {
    Lease(Message, ChunkId),
    Wait,
    Done,
}

/// The per-worker driver loop: `Ready` → lease → result, with
/// heartbeat renewal in between. Any `Err` return means the connection
/// is considered dead; the caller requeues this worker's leases.
fn drive_worker(
    shared: &Arc<Shared>,
    worker_id: WorkerId,
    conn: &mut TcpStream,
    rx: &Receiver<Message>,
) -> Result<(), ()> {
    let metrics = twocs_obs::metrics::global();
    let ttl = shared.cfg.lease_ttl.max(Duration::from_millis(1));
    loop {
        // 1. Wait for the worker to ask for work (heartbeats renew).
        loop {
            match rx.recv_timeout(ttl) {
                Ok(Message::Ready) => break,
                Ok(Message::Heartbeat) => continue,
                Ok(_) | Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    return Err(())
                }
            }
        }

        // 2. Find work, waiting briefly on the job condvar; send Wait so
        // an idle connection keeps exchanging traffic (which is also how
        // a dead idle worker is detected, via the failed write).
        let directive = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    break Directive::Done;
                }
                let now = shared.now();
                let ttl_ms = shared.ttl_ms();
                if let Some(job) = st.job.as_mut() {
                    if let Some(chunk) = job.tracker.lease(worker_id, now, ttl_ms) {
                        let lease = job.lease_message(chunk);
                        break Directive::Lease(lease, chunk);
                    }
                }
                let (g, timeout) = shared
                    .work
                    .wait_timeout(st, POLL * 12)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
                if timeout.timed_out() {
                    break Directive::Wait;
                }
            }
        };

        match directive {
            Directive::Done => {
                let n = write_frame(conn, &Message::Done).map_err(|_| ())?;
                shared.count_tx(n);
                return Ok(());
            }
            Directive::Wait => {
                let n = write_frame(conn, &Message::Wait).map_err(|_| ())?;
                shared.count_tx(n);
                continue;
            }
            Directive::Lease(lease, chunk) => {
                let _span = twocs_obs::span(&format!("lease chunk {chunk}"), "dist");
                metrics.counter("dist.chunks_leased").inc();
                let t0 = Instant::now();
                let sent = write_frame(conn, &lease);
                match sent {
                    Ok(n) => shared.count_tx(n),
                    Err(_) => return Err(()),
                }
                // 3. Await the chunk result; heartbeats extend the lease.
                loop {
                    match rx.recv_timeout(ttl) {
                        Ok(Message::Heartbeat) => {
                            let mut st = shared.lock();
                            let now = shared.now();
                            let ttl_ms = shared.ttl_ms();
                            if let Some(job) = st.job.as_mut() {
                                job.tracker.renew(worker_id, now, ttl_ms);
                            }
                        }
                        Ok(Message::ChunkResult {
                            job: jid,
                            chunk: cid,
                            values,
                        }) => {
                            let mut st = shared.lock();
                            let recorded =
                                record_result(&mut st, jid, worker_id, cid, values, t0.elapsed());
                            drop(st);
                            shared.progress.notify_all();
                            if let Recorded::Deliver(tx, c, v) = recorded {
                                // Send only after the lock is released:
                                // a full channel blocks here, and the
                                // drainer needs the lock to make room.
                                // An Err means the submitter aborted the
                                // job; the values are simply dropped.
                                let _ = tx.send((c, v));
                            }
                            break;
                        }
                        Ok(Message::Refuse { reason, .. }) => {
                            // The worker cannot evaluate this job at all
                            // (e.g. unknown device). Requeue its leases
                            // and release it; the chunk flows elsewhere.
                            metrics.counter("dist.leases_refused").inc();
                            let lost = {
                                let mut st = shared.lock();
                                st.job
                                    .as_mut()
                                    .map(|job| job.tracker.fail_worker(worker_id))
                                    .unwrap_or_default()
                            };
                            if !lost.is_empty() {
                                metrics
                                    .counter("dist.chunks_reassigned")
                                    .add(lost.len() as u64);
                                shared.work.notify_all();
                            }
                            let _ = reason;
                            let n = write_frame(conn, &Message::Done).map_err(|_| ())?;
                            shared.count_tx(n);
                            return Ok(());
                        }
                        Ok(_)
                        | Err(RecvTimeoutError::Timeout)
                        | Err(RecvTimeoutError::Disconnected) => return Err(()),
                    }
                }
            }
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.lock().shutdown {
            return;
        }
        match listener.accept() {
            Ok((conn, _peer)) => {
                let conn_shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("dist-conn".to_owned())
                    .spawn(move || serve_connection(&conn_shared, conn));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(POLL),
        }
    }
}
