//! End-to-end tests for the `twocs serve` HTTP query service, run
//! in-process: each test binds an ephemeral port, drives it with raw
//! `TcpStream` clients, and shuts it down via its [`ShutdownHandle`].
//!
//! The contract pinned here is the one the CI smoke test relies on:
//! responses are byte-identical to the equivalent CLI/library output,
//! overload answers `503` rather than hanging, and shutdown completes
//! in-flight requests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use twocs::analysis::serialized::Method;
use twocs::analysis::sweep::GridSweep;
use twocs::hw::DeviceSpec;
use twocs::serve::{HandlerConfig, Server, ServerConfig};

/// Bind a server on an ephemeral port and run it on a background thread.
/// Returns the address, the shutdown handle, and the join handle that
/// yields the final [`twocs::serve::ServeStats`].
fn start(
    config: ServerConfig,
) -> (
    String,
    twocs::serve::ShutdownHandle,
    std::thread::JoinHandle<twocs::serve::ServeStats>,
) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, shutdown, join)
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 2,
        queue: 16,
        request_timeout: Duration::from_secs(5),
        handler: HandlerConfig::default(),
    }
}

/// One full HTTP exchange; returns the raw response (head + body).
fn get(addr: &str, target: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(conn, "GET {target} HTTP/1.1\r\nHost: twocs\r\n\r\n").expect("send request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    raw
}

fn status_of(raw: &str) -> u16 {
    raw.split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn body_of(raw: &str) -> &str {
    raw.split_once("\r\n\r\n").map_or("", |(_, b)| b)
}

#[test]
fn healthz_answers_and_shutdown_is_clean() {
    let (addr, shutdown, join) = start(test_config());
    let raw = get(&addr, "/v1/healthz");
    assert_eq!(status_of(&raw), 200, "{raw}");
    assert_eq!(body_of(&raw), "{\"status\":\"ok\"}");
    assert!(raw.contains("Connection: close\r\n"), "{raw}");
    shutdown.trigger();
    let stats = join.join().expect("server thread");
    assert_eq!(stats.served, 1);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn serialized_csv_is_byte_identical_to_the_sweep_engine() {
    let (addr, shutdown, join) = start(test_config());
    let query = "h=4096&tp=16,32&flop_vs_bw=1,2&method=proj";
    let raw = get(&addr, &format!("/v1/serialized?{query}"));
    assert_eq!(status_of(&raw), 200, "{raw}");

    let grid = GridSweep {
        hs: vec![4096],
        tps: vec![16, 32],
        flop_vs_bw: vec![1.0, 2.0],
        method: Method::Projection,
        ..GridSweep::default()
    };
    // The CLI prints `to_csv()` with `println!`, which appends a newline;
    // the server body carries the same trailing newline so `curl` output
    // diffs clean against `twocs sweep --csv` stdout.
    let expected = format!("{}\n", grid.run(&DeviceSpec::mi210(), 1).0.to_csv());
    assert_eq!(body_of(&raw), expected);
    assert!(raw.contains("Content-Type: text/csv"), "{raw}");

    // `/v1/sweep` is an alias and a higher `jobs` must not change bytes.
    let alias = get(&addr, &format!("/v1/sweep?{query}&jobs=4"));
    assert_eq!(body_of(&alias), expected);

    shutdown.trigger();
    join.join().expect("server thread");
}

/// The extended MoE/PP/SP axes and the workload selector over HTTP:
/// contradictory parameters answer 400 with a pointed message, omitted
/// parameters canonicalize to the defaults (same bytes as a legacy
/// query), and an extended query's CSV is byte-identical to the engine.
#[test]
fn extended_axis_params_validate_and_stay_byte_identical() {
    let (addr, shutdown, join) = start(test_config());

    // Contradictory or malformed axis parameters → 400.
    for (query, needle) in [
        ("h=4096&tp=16&stages=0", "non-zero"),
        ("h=4096&tp=16&experts=2&top_k=4", "top_k exceeds experts"),
        // The default method is sim, which models dense TP training only:
        // a decode workload without method=proj is a contradiction.
        ("h=4096&tp=16&workload=decode", "requires method=proj"),
        ("h=4096&tp=16&experts=8", "require method=proj"),
        ("h=4096&tp=16&workload=speculate", "unknown workload"),
    ] {
        let raw = get(&addr, &format!("/v1/sweep?{query}"));
        assert_eq!(status_of(&raw), 400, "{query}: {raw}");
        assert!(body_of(&raw).contains(needle), "{query}: {raw}");
    }

    // Omitted axis params are the defaults: bytes match the legacy query.
    let legacy = get(&addr, "/v1/sweep?h=4096&tp=16,32&method=proj");
    let explicit = get(
        &addr,
        "/v1/sweep?h=4096&tp=16,32&method=proj&experts=1&top_k=1&stages=1\
         &micro_batches=1&sp=1&workload=training",
    );
    assert_eq!(status_of(&legacy), 200, "{legacy}");
    assert_eq!(body_of(&legacy), body_of(&explicit), "canonicalization");

    // An extended query is byte-identical to the sweep engine.
    let raw = get(
        &addr,
        "/v1/sweep?h=4096&tp=16,32&method=proj&experts=1,8&top_k=2&stages=1,4\
         &micro_batches=4&sp=1,2&workload=prefill",
    );
    assert_eq!(status_of(&raw), 200, "{raw}");
    let grid = GridSweep {
        hs: vec![4096],
        tps: vec![16, 32],
        method: Method::Projection,
        experts: vec![1, 8],
        top_ks: vec![2],
        stages: vec![1, 4],
        micro_batches: vec![4],
        sps: vec![1, 2],
        workload: twocs::analysis::sweep::Workload::Prefill,
        ..GridSweep::default()
    };
    let expected = format!("{}\n", grid.run(&DeviceSpec::mi210(), 1).0.to_csv());
    assert_eq!(body_of(&raw), expected);
    assert!(body_of(&raw).contains("experts"), "extended header present");

    shutdown.trigger();
    join.join().expect("server thread");
}

#[test]
fn eight_concurrent_clients_get_identical_answers() {
    let mut config = test_config();
    config.jobs = 4;
    let (addr, shutdown, join) = start(config);
    let target = "/v1/overlapped?h=4096&slb=2048&tp=16&dp=4";
    let reference = get(&addr, target);
    assert_eq!(status_of(&reference), 200, "{reference}");
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || get(&addr, target))
        })
        .collect();
    for client in clients {
        let raw = client.join().expect("client thread");
        assert_eq!(raw, reference, "concurrent responses must be identical");
    }
    shutdown.trigger();
    let stats = join.join().expect("server thread");
    assert_eq!(stats.served, 9);
}

#[test]
fn error_statuses_cover_the_http_surface() {
    let (addr, shutdown, join) = start(test_config());
    for (target, want, needle) in [
        ("/v1/nope", 404, "/v1/serialized"),
        ("/v1/sweep?h=1000", 400, "multiples of 256"),
        ("/v1/sweep?hs=4096", 400, "unknown query parameter"),
        (
            "/v1/overlapped?h=1024&slb=2048&tp=256",
            400,
            "cannot shard further",
        ),
        ("/v1/overlapped?h=4096&slb=0", 400, "non-zero"),
        ("/v1/debug/sleep?ms=1", 404, "no such endpoint"),
    ] {
        let raw = get(&addr, target);
        assert_eq!(status_of(&raw), want, "{target}: {raw}");
        assert!(body_of(&raw).contains(needle), "{target}: {raw}");
    }
    // Non-GET methods are refused.
    let mut conn = TcpStream::connect(&addr).expect("connect");
    write!(conn, "POST /v1/healthz HTTP/1.1\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    assert_eq!(status_of(&raw), 405, "{raw}");
    // Non-HTTP bytes get a 400, not a hang or a dropped connection.
    let mut conn = TcpStream::connect(&addr).expect("connect");
    write!(conn, "garbage\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    assert_eq!(status_of(&raw), 400, "{raw}");
    shutdown.trigger();
    join.join().expect("server thread");
}

#[test]
fn overload_answers_503_instead_of_hanging() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 1,
        queue: 1,
        request_timeout: Duration::from_secs(5),
        handler: HandlerConfig {
            enable_debug: true,
            ..HandlerConfig::default()
        },
    };
    let (addr, shutdown, join) = start(config);
    // Occupy the single worker, then fill the single queue slot — the
    // pauses let each connection be accepted (and the first one popped)
    // before the next arrives, so the overflow state is deterministic.
    let blockers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let b = std::thread::spawn(move || get(&addr, "/v1/debug/sleep?ms=1500"));
            std::thread::sleep(Duration::from_millis(300));
            b
        })
        .collect();
    // Overflow: with the worker busy and the queue full, further
    // connections must be rejected promptly with 503.
    let raw = get(&addr, "/v1/healthz");
    assert_eq!(
        status_of(&raw),
        503,
        "overloaded server must shed load: {raw}"
    );
    assert!(body_of(&raw).contains("capacity"), "{raw}");
    for b in blockers {
        let raw = b.join().expect("blocker thread");
        assert_eq!(status_of(&raw), 200, "queued requests still complete");
    }
    shutdown.trigger();
    let stats = join.join().expect("server thread");
    assert!(stats.rejected >= 1, "rejections are counted: {stats:?}");
}

#[test]
fn shutdown_completes_in_flight_requests() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 1,
        queue: 4,
        request_timeout: Duration::from_secs(5),
        handler: HandlerConfig {
            enable_debug: true,
            ..HandlerConfig::default()
        },
    };
    let (addr, shutdown, join) = start(config);
    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || get(&addr, "/v1/debug/sleep?ms=800"))
    };
    std::thread::sleep(Duration::from_millis(300));
    shutdown.trigger();
    // The slow request was accepted before the trigger; the drain must
    // let it finish and answer 200 — not sever the connection.
    let raw = in_flight.join().expect("in-flight client");
    assert_eq!(status_of(&raw), 200, "{raw}");
    assert_eq!(body_of(&raw), "{\"slept_ms\":800}");
    join.join().expect("server thread");
    // And the listener is really gone afterwards.
    assert!(
        TcpStream::connect(&addr).is_err(),
        "no one is listening after shutdown"
    );
}

#[test]
fn metrics_endpoint_reflects_traffic() {
    let (addr, shutdown, join) = start(test_config());
    get(&addr, "/v1/healthz");
    let raw = get(&addr, "/v1/metrics");
    assert_eq!(status_of(&raw), 200, "{raw}");
    assert!(body_of(&raw).contains("serve.requests_total"), "{raw}");
    let json = get(&addr, "/v1/metrics?format=json");
    assert!(twocs::obs::json::validate(body_of(&json)).is_ok(), "{json}");
    shutdown.trigger();
    join.join().expect("server thread");
}
