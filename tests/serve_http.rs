//! End-to-end tests for the `twocs serve` HTTP query service, run
//! in-process: each test binds an ephemeral port, drives it with raw
//! `TcpStream` clients, and shuts it down via its [`ShutdownHandle`].
//!
//! The contract pinned here is the one the CI smoke test relies on:
//! responses are byte-identical to the equivalent CLI/library output,
//! HTTP/1.1 keep-alive carries many requests (including pipelined ones)
//! per connection, overload answers `503` rather than hanging, and
//! shutdown completes in-flight requests.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use twocs::analysis::serialized::Method;
use twocs::analysis::sweep::GridSweep;
use twocs::hw::DeviceSpec;
use twocs::serve::{HandlerConfig, Server, ServerConfig};

/// Bind a server on an ephemeral port and run it on a background thread.
/// Returns the address, the shutdown handle, and the join handle that
/// yields the final [`twocs::serve::ServeStats`].
fn start(
    config: ServerConfig,
) -> (
    String,
    twocs::serve::ShutdownHandle,
    std::thread::JoinHandle<twocs::serve::ServeStats>,
) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, shutdown, join)
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 2,
        queue: 16,
        request_timeout: Duration::from_secs(5),
        handler: HandlerConfig::default(),
        ..ServerConfig::default()
    }
}

/// One full HTTP exchange on its own connection (`Connection: close`,
/// read to EOF); returns the raw response (head + body).
fn get(addr: &str, target: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        conn,
        "GET {target} HTTP/1.1\r\nHost: twocs\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    raw
}

/// Read exactly one response (head + `Content-Length` body) from a
/// keep-alive connection, leaving the connection usable.
fn read_response(conn: &mut TcpStream) -> String {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    // Head, byte by byte (test-sized traffic; simplicity over speed).
    while !raw.ends_with(b"\r\n\r\n") {
        match conn.read(&mut byte) {
            Ok(1) => raw.push(byte[0]),
            Ok(_) => panic!(
                "connection closed mid-head: {:?}",
                String::from_utf8_lossy(&raw)
            ),
            Err(e) => panic!("read error mid-head: {e}"),
        }
    }
    let head = String::from_utf8(raw.clone()).expect("utf-8 head");
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    let mut body = vec![0u8; len];
    conn.read_exact(&mut body).expect("read body");
    raw.extend_from_slice(&body);
    String::from_utf8(raw).expect("utf-8 response")
}

fn status_of(raw: &str) -> u16 {
    raw.split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn body_of(raw: &str) -> &str {
    raw.split_once("\r\n\r\n").map_or("", |(_, b)| b)
}

#[test]
fn healthz_answers_and_shutdown_is_clean() {
    let (addr, shutdown, join) = start(test_config());
    let raw = get(&addr, "/v1/healthz");
    assert_eq!(status_of(&raw), 200, "{raw}");
    assert_eq!(body_of(&raw), "{\"status\":\"ok\"}");
    // `Connection: close` requests are answered with close semantics.
    assert!(raw.contains("Connection: close\r\n"), "{raw}");
    shutdown.trigger();
    let stats = join.join().expect("server thread");
    assert_eq!(stats.served, 1);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn keep_alive_carries_many_requests_on_one_connection() {
    let (addr, shutdown, join) = start(test_config());
    let mut conn = TcpStream::connect(&addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Three sequential requests, one connection; responses advertise
    // keep-alive until the client asks to close.
    for _ in 0..2 {
        write!(conn, "GET /v1/healthz HTTP/1.1\r\nHost: twocs\r\n\r\n").unwrap();
        let raw = read_response(&mut conn);
        assert_eq!(status_of(&raw), 200, "{raw}");
        assert_eq!(body_of(&raw), "{\"status\":\"ok\"}");
        assert!(raw.contains("Connection: keep-alive\r\n"), "{raw}");
    }
    write!(
        conn,
        "GET /v1/overlapped?h=4096&slb=2048&tp=16&dp=4 HTTP/1.1\r\nHost: twocs\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("close-delimited read");
    assert_eq!(status_of(&raw), 200, "{raw}");
    assert!(raw.contains("Connection: close\r\n"), "{raw}");
    shutdown.trigger();
    let stats = join.join().expect("server thread");
    assert_eq!(stats.served, 3, "three requests, one connection");
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (addr, shutdown, join) = start(test_config());
    let mut conn = TcpStream::connect(&addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Both heads in one write; the second asks to close.
    write!(
        conn,
        "GET /v1/healthz HTTP/1.1\r\nHost: twocs\r\n\r\nGET /v1/nope HTTP/1.1\r\nHost: twocs\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let first = read_response(&mut conn);
    assert_eq!(status_of(&first), 200, "{first}");
    assert_eq!(body_of(&first), "{\"status\":\"ok\"}");
    let mut second = String::new();
    conn.read_to_string(&mut second).expect("second response");
    assert_eq!(status_of(&second), 404, "{second}");
    shutdown.trigger();
    let stats = join.join().expect("server thread");
    assert_eq!(stats.served, 2);
}

#[test]
fn request_heads_split_across_writes_still_parse() {
    let (addr, shutdown, join) = start(test_config());
    let mut conn = TcpStream::connect(&addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let head = "GET /v1/healthz HTTP/1.1\r\nHost: twocs\r\nConnection: close\r\n\r\n";
    let (a, b) = head.split_at(11);
    conn.write_all(a.as_bytes()).unwrap();
    conn.flush().unwrap();
    std::thread::sleep(Duration::from_millis(120));
    conn.write_all(b.as_bytes()).unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("response");
    assert_eq!(status_of(&raw), 200, "{raw}");
    shutdown.trigger();
    join.join().expect("server thread");
}

#[test]
fn idle_connections_are_closed_after_the_idle_timeout() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..test_config()
    };
    let (addr, shutdown, join) = start(config);
    let mut conn = TcpStream::connect(&addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Serve one keep-alive request so the connection is mid-session.
    write!(conn, "GET /v1/healthz HTTP/1.1\r\nHost: twocs\r\n\r\n").unwrap();
    let raw = read_response(&mut conn);
    assert_eq!(status_of(&raw), 200, "{raw}");
    // Say nothing; the server must hang up on its own.
    let start = Instant::now();
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).expect("EOF, not an error");
    assert!(rest.is_empty(), "idle close sends no bytes: {rest:?}");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "close must come from the idle timeout, not the client read timeout"
    );
    shutdown.trigger();
    join.join().expect("server thread");
}

#[test]
fn connection_budget_sheds_with_503() {
    let config = ServerConfig {
        max_connections: 2,
        ..test_config()
    };
    let (addr, shutdown, join) = start(config);
    // Two squatters occupy the budget without sending anything.
    let squatters: Vec<TcpStream> = (0..2)
        .map(|_| {
            let conn = TcpStream::connect(&addr).expect("connect");
            // Make sure the server has accepted them before counting on
            // the budget being full.
            std::thread::sleep(Duration::from_millis(100));
            conn
        })
        .collect();
    // The third connection is shed: it sends nothing (so no RST race
    // can destroy the response) and still receives a full 503.
    let mut shed = TcpStream::connect(&addr).expect("connect");
    shed.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = String::new();
    shed.read_to_string(&mut raw).expect("read 503");
    assert_eq!(status_of(&raw), 503, "{raw}");
    assert!(body_of(&raw).contains("capacity"), "{raw}");
    assert!(raw.contains("Connection: close\r\n"), "{raw}");
    drop(squatters);
    shutdown.trigger();
    let stats = join.join().expect("server thread");
    assert!(stats.rejected >= 1, "sheds are counted: {stats:?}");
}

#[test]
fn head_answers_get_headers_without_a_body() {
    let (addr, shutdown, join) = start(test_config());
    let get_raw = get(&addr, "/v1/healthz");
    let mut conn = TcpStream::connect(&addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        conn,
        "HEAD /v1/healthz HTTP/1.1\r\nHost: twocs\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut head_raw = String::new();
    conn.read_to_string(&mut head_raw).expect("read response");
    assert_eq!(status_of(&head_raw), 200, "{head_raw}");
    assert_eq!(body_of(&head_raw), "", "HEAD carries no body");
    // Same headers as GET — including the full-body Content-Length.
    let get_head = get_raw.split_once("\r\n\r\n").unwrap().0;
    let head_head = head_raw.split_once("\r\n\r\n").unwrap().0;
    assert_eq!(get_head, head_head);
    assert!(head_raw.contains("Content-Length: 15\r\n"), "{head_raw}");
    shutdown.trigger();
    join.join().expect("server thread");
}

#[test]
fn oversized_heads_get_431_at_the_exact_cap() {
    let (addr, shutdown, join) = start(test_config());
    // A request head one byte over MAX_HEAD_BYTES: 431.
    let mut conn = TcpStream::connect(&addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let line = "GET /v1/healthz HTTP/1.1\r\n";
    let max = twocs::serve::http::MAX_HEAD_BYTES;
    let pad = max + 1 - line.len() - "x: \r\n\r\n".len();
    let over = format!("{line}x: {}\r\n\r\n", "p".repeat(pad));
    assert_eq!(over.len(), max + 1);
    conn.write_all(over.as_bytes()).unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    assert_eq!(status_of(&raw), 431, "{raw}");
    // Exactly MAX_HEAD_BYTES (terminator included): still served.
    let exact = format!("{line}x: {}\r\n\r\n", "p".repeat(pad - 1));
    assert_eq!(exact.len(), max);
    let mut conn = TcpStream::connect(&addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(exact.as_bytes()).unwrap();
    let raw = read_response(&mut conn);
    assert_eq!(status_of(&raw), 200, "boundary head must parse: {raw}");
    shutdown.trigger();
    join.join().expect("server thread");
}

#[test]
fn serialized_csv_is_byte_identical_to_the_sweep_engine() {
    let (addr, shutdown, join) = start(test_config());
    let query = "h=4096&tp=16,32&flop_vs_bw=1,2&method=proj";
    let raw = get(&addr, &format!("/v1/serialized?{query}"));
    assert_eq!(status_of(&raw), 200, "{raw}");

    let grid = GridSweep {
        hs: vec![4096],
        tps: vec![16, 32],
        flop_vs_bw: vec![1.0, 2.0],
        method: Method::Projection,
        ..GridSweep::default()
    };
    // The CLI prints `to_csv()` with `println!`, which appends a newline;
    // the server body carries the same trailing newline so `curl` output
    // diffs clean against `twocs sweep --csv` stdout.
    let expected = format!("{}\n", grid.run(&DeviceSpec::mi210(), 1).0.to_csv());
    assert_eq!(body_of(&raw), expected);
    assert!(raw.contains("Content-Type: text/csv"), "{raw}");

    // `/v1/sweep` is an alias, a higher `jobs` must not change bytes,
    // and the second (response-cache-warm) answer is identical too.
    let alias = get(&addr, &format!("/v1/sweep?{query}&jobs=4"));
    assert_eq!(body_of(&alias), expected);
    let warm = get(&addr, &format!("/v1/serialized?{query}"));
    assert_eq!(body_of(&warm), expected, "cache-warm bytes identical");

    shutdown.trigger();
    join.join().expect("server thread");
}

/// The extended MoE/PP/SP axes and the workload selector over HTTP:
/// contradictory parameters answer 400 with a pointed message, omitted
/// parameters canonicalize to the defaults (same bytes as a legacy
/// query), and an extended query's CSV is byte-identical to the engine.
#[test]
fn extended_axis_params_validate_and_stay_byte_identical() {
    let (addr, shutdown, join) = start(test_config());

    // Contradictory or malformed axis parameters → 400.
    for (query, needle) in [
        ("h=4096&tp=16&stages=0", "non-zero"),
        ("h=4096&tp=16&experts=2&top_k=4", "top_k exceeds experts"),
        // The default method is sim, which models dense TP training only:
        // a decode workload without method=proj is a contradiction.
        ("h=4096&tp=16&workload=decode", "requires method=proj"),
        ("h=4096&tp=16&experts=8", "require method=proj"),
        ("h=4096&tp=16&workload=speculate", "unknown workload"),
    ] {
        let raw = get(&addr, &format!("/v1/sweep?{query}"));
        assert_eq!(status_of(&raw), 400, "{query}: {raw}");
        assert!(body_of(&raw).contains(needle), "{query}: {raw}");
    }

    // Omitted axis params are the defaults: bytes match the legacy query.
    let legacy = get(&addr, "/v1/sweep?h=4096&tp=16,32&method=proj");
    let explicit = get(
        &addr,
        "/v1/sweep?h=4096&tp=16,32&method=proj&experts=1&top_k=1&stages=1\
         &micro_batches=1&sp=1&workload=training",
    );
    assert_eq!(status_of(&legacy), 200, "{legacy}");
    assert_eq!(body_of(&legacy), body_of(&explicit), "canonicalization");

    // An extended query is byte-identical to the sweep engine.
    let raw = get(
        &addr,
        "/v1/sweep?h=4096&tp=16,32&method=proj&experts=1,8&top_k=2&stages=1,4\
         &micro_batches=4&sp=1,2&workload=prefill",
    );
    assert_eq!(status_of(&raw), 200, "{raw}");
    let grid = GridSweep {
        hs: vec![4096],
        tps: vec![16, 32],
        method: Method::Projection,
        experts: vec![1, 8],
        top_ks: vec![2],
        stages: vec![1, 4],
        micro_batches: vec![4],
        sps: vec![1, 2],
        workload: twocs::analysis::sweep::Workload::Prefill,
        ..GridSweep::default()
    };
    let expected = format!("{}\n", grid.run(&DeviceSpec::mi210(), 1).0.to_csv());
    assert_eq!(body_of(&raw), expected);
    assert!(body_of(&raw).contains("experts"), "extended header present");

    shutdown.trigger();
    join.join().expect("server thread");
}

#[test]
fn eight_concurrent_clients_get_identical_answers() {
    let mut config = test_config();
    config.jobs = 4;
    let (addr, shutdown, join) = start(config);
    let target = "/v1/overlapped?h=4096&slb=2048&tp=16&dp=4";
    let reference = get(&addr, target);
    assert_eq!(status_of(&reference), 200, "{reference}");
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || get(&addr, target))
        })
        .collect();
    for client in clients {
        let raw = client.join().expect("client thread");
        assert_eq!(raw, reference, "concurrent responses must be identical");
    }
    shutdown.trigger();
    let stats = join.join().expect("server thread");
    assert_eq!(stats.served, 9);
}

#[test]
fn error_statuses_cover_the_http_surface() {
    let (addr, shutdown, join) = start(test_config());
    for (target, want, needle) in [
        ("/v1/nope", 404, "/v1/serialized"),
        ("/v1/sweep?h=1000", 400, "multiples of 256"),
        ("/v1/sweep?hs=4096", 400, "unknown query parameter"),
        (
            "/v1/overlapped?h=1024&slb=2048&tp=256",
            400,
            "cannot shard further",
        ),
        ("/v1/overlapped?h=4096&slb=0", 400, "non-zero"),
        ("/v1/debug/sleep?ms=1", 404, "no such endpoint"),
    ] {
        let raw = get(&addr, target);
        assert_eq!(status_of(&raw), want, "{target}: {raw}");
        assert!(body_of(&raw).contains(needle), "{target}: {raw}");
    }
    // Non-GET/HEAD methods are refused, with the RFC-required Allow.
    let mut conn = TcpStream::connect(&addr).expect("connect");
    write!(
        conn,
        "POST /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    assert_eq!(status_of(&raw), 405, "{raw}");
    assert!(raw.contains("Allow: GET, HEAD\r\n"), "{raw}");
    // Non-HTTP bytes get a 400, not a hang or a dropped connection.
    let mut conn = TcpStream::connect(&addr).expect("connect");
    write!(conn, "garbage\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    assert_eq!(status_of(&raw), 400, "{raw}");
    // `HTTP/1.`-prefixed garbage versions are rejected too.
    let mut conn = TcpStream::connect(&addr).expect("connect");
    write!(conn, "GET /v1/healthz HTTP/1.1x\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    assert_eq!(status_of(&raw), 400, "{raw}");
    assert!(body_of(&raw).contains("unsupported protocol"), "{raw}");
    shutdown.trigger();
    join.join().expect("server thread");
}

#[test]
fn overload_answers_503_instead_of_hanging() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 1,
        queue: 1,
        request_timeout: Duration::from_secs(5),
        handler: HandlerConfig {
            enable_debug: true,
            ..HandlerConfig::default()
        },
        ..ServerConfig::default()
    };
    let (addr, shutdown, join) = start(config);
    // Occupy the single worker, then fill the single queue slot — the
    // pauses let each request be accepted (and the first one popped)
    // before the next arrives, so the overflow state is deterministic.
    let blockers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let b = std::thread::spawn(move || get(&addr, "/v1/debug/sleep?ms=1500"));
            std::thread::sleep(Duration::from_millis(300));
            b
        })
        .collect();
    // Overflow: with the worker busy and the queue full, further
    // requests must be rejected promptly with 503.
    let raw = get(&addr, "/v1/healthz");
    assert_eq!(
        status_of(&raw),
        503,
        "overloaded server must shed load: {raw}"
    );
    assert!(body_of(&raw).contains("capacity"), "{raw}");
    for b in blockers {
        let raw = b.join().expect("blocker thread");
        assert_eq!(status_of(&raw), 200, "queued requests still complete");
    }
    shutdown.trigger();
    let stats = join.join().expect("server thread");
    assert!(stats.rejected >= 1, "rejections are counted: {stats:?}");
}

#[test]
fn shutdown_completes_in_flight_requests() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 1,
        queue: 4,
        request_timeout: Duration::from_secs(5),
        handler: HandlerConfig {
            enable_debug: true,
            ..HandlerConfig::default()
        },
        ..ServerConfig::default()
    };
    let (addr, shutdown, join) = start(config);
    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || get(&addr, "/v1/debug/sleep?ms=800"))
    };
    std::thread::sleep(Duration::from_millis(300));
    shutdown.trigger();
    // The slow request was accepted before the trigger; the drain must
    // let it finish and answer 200 — not sever the connection.
    let raw = in_flight.join().expect("in-flight client");
    assert_eq!(status_of(&raw), 200, "{raw}");
    assert_eq!(body_of(&raw), "{\"slept_ms\":800}");
    join.join().expect("server thread");
    // And the listener is really gone afterwards.
    assert!(
        TcpStream::connect(&addr).is_err(),
        "no one is listening after shutdown"
    );
}

#[test]
fn metrics_endpoint_reflects_traffic() {
    let (addr, shutdown, join) = start(test_config());
    get(&addr, "/v1/healthz");
    // Warm the response cache so its counters show up and move.
    let target = "/v1/overlapped?h=4096&slb=2048&tp=16&dp=8";
    get(&addr, target);
    get(&addr, target);
    let raw = get(&addr, "/v1/metrics");
    assert_eq!(status_of(&raw), 200, "{raw}");
    assert!(body_of(&raw).contains("serve.requests_total"), "{raw}");
    assert!(
        body_of(&raw).contains("serve.cache"),
        "response-cache counters are published: {raw}"
    );
    let json = get(&addr, "/v1/metrics?format=json");
    assert!(twocs::obs::json::validate(body_of(&json)).is_ok(), "{json}");
    assert!(body_of(&json).contains("\"serve.cache.hits\""), "{json}");
    shutdown.trigger();
    join.join().expect("server thread");
}

/// Lightly abusive client behavior must not wedge the event loop: a
/// client that connects and immediately disconnects, and one that sends
/// a partial head then disconnects, are both absorbed while the server
/// keeps answering others.
#[test]
fn abrupt_disconnects_do_not_wedge_the_loop() {
    let (addr, shutdown, join) = start(test_config());
    for _ in 0..4 {
        drop(TcpStream::connect(&addr).expect("connect"));
        let mut conn = TcpStream::connect(&addr).expect("connect");
        conn.write_all(b"GET /v1/heal").unwrap();
        drop(conn);
    }
    let raw = get(&addr, "/v1/healthz");
    assert_eq!(status_of(&raw), 200, "{raw}");
    shutdown.trigger();
    join.join().expect("server thread");
}

#[test]
fn max_requests_per_conn_caps_a_connection() {
    let config = ServerConfig {
        max_requests_per_conn: 2,
        ..test_config()
    };
    let (addr, shutdown, join) = start(config);
    let mut conn = TcpStream::connect(&addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(conn, "GET /v1/healthz HTTP/1.1\r\nHost: twocs\r\n\r\n").unwrap();
    let first = read_response(&mut conn);
    assert!(first.contains("Connection: keep-alive\r\n"), "{first}");
    write!(conn, "GET /v1/healthz HTTP/1.1\r\nHost: twocs\r\n\r\n").unwrap();
    let second = read_response(&mut conn);
    assert!(
        second.contains("Connection: close\r\n"),
        "the cap closes the connection: {second}"
    );
    // And the server really does hang up now.
    let mut rest = Vec::new();
    match conn.read_to_end(&mut rest) {
        Ok(_) => assert!(rest.is_empty(), "{rest:?}"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
            ),
            "{e}"
        ),
    }
    shutdown.trigger();
    join.join().expect("server thread");
}
