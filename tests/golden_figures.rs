//! Golden-snapshot tests for every paper artifact in `out/`.
//!
//! Each registered experiment is regenerated and diffed cell-by-cell
//! against its checked-in `out/<id>.csv` golden. Numeric cells compare
//! with a per-cell relative tolerance (so a legitimate last-ulp change in
//! float formatting does not flake), everything else — headers, panel
//! separators, row/column structure — must match exactly. This pins the
//! figures against silent drift: any model change that moves a number
//! past the tolerance fails here, visibly, with the offending cell.
//!
//! To re-bless the goldens after an *intentional* model change:
//!
//! ```text
//! TWOCS_BLESS=1 cargo test --test golden_figures
//! ```

use std::path::{Path, PathBuf};
use twocs::analysis::experiments;
use twocs::hw::DeviceSpec;

/// Relative tolerance for numeric cells. Regeneration is deterministic,
/// so goldens normally match byte-for-byte; the tolerance only absorbs
/// formatting-level noise, not model changes.
const REL_TOL: f64 = 1e-6;
/// Absolute floor so near-zero cells don't amplify the relative check.
const ABS_TOL: f64 = 1e-9;

fn out_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("out")
}

fn blessing() -> bool {
    std::env::var("TWOCS_BLESS").is_ok_and(|v| v == "1")
}

fn cells_match(expected: &str, actual: &str) -> bool {
    if expected == actual {
        return true;
    }
    match (expected.parse::<f64>(), actual.parse::<f64>()) {
        (Ok(e), Ok(a)) => {
            let diff = (e - a).abs();
            diff <= ABS_TOL || diff <= REL_TOL * e.abs().max(a.abs())
        }
        _ => false,
    }
}

/// Diff two CSV documents cell-by-cell; returns the first mismatch as a
/// human-readable description.
fn diff_csv(id: &str, golden: &str, regenerated: &str) -> Result<(), String> {
    let golden_lines: Vec<&str> = golden.lines().collect();
    let new_lines: Vec<&str> = regenerated.lines().collect();
    if golden_lines.len() != new_lines.len() {
        return Err(format!(
            "{id}: line count changed: golden {} vs regenerated {}",
            golden_lines.len(),
            new_lines.len()
        ));
    }
    for (lineno, (g, n)) in golden_lines.iter().zip(&new_lines).enumerate() {
        // Panel headers (`# fig15.a`) and blank separators: exact.
        if g.starts_with('#') || g.is_empty() || n.starts_with('#') || n.is_empty() {
            if g != n {
                return Err(format!(
                    "{id}:{}: structural line changed:\n  golden:      {g}\n  regenerated: {n}",
                    lineno + 1
                ));
            }
            continue;
        }
        let g_cells: Vec<&str> = g.split(',').collect();
        let n_cells: Vec<&str> = n.split(',').collect();
        if g_cells.len() != n_cells.len() {
            return Err(format!(
                "{id}:{}: column count changed ({} vs {})",
                lineno + 1,
                g_cells.len(),
                n_cells.len()
            ));
        }
        for (col, (ge, ne)) in g_cells.iter().zip(&n_cells).enumerate() {
            if !cells_match(ge, ne) {
                return Err(format!(
                    "{id}:{}: cell {} drifted beyond {REL_TOL:e} relative tolerance: \
                     golden `{ge}` vs regenerated `{ne}`",
                    lineno + 1,
                    col + 1
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn every_figure_matches_its_checked_in_golden() {
    let device = DeviceSpec::mi210();
    let dir = out_dir();
    let mut failures = Vec::new();
    for def in experiments::all() {
        let regenerated = (def.run)(&device).to_csv();
        let path = dir.join(format!("{}.csv", def.id));
        if blessing() {
            std::fs::write(&path, &regenerated)
                .unwrap_or_else(|e| panic!("cannot bless {}: {e}", path.display()));
            continue;
        }
        let golden = match std::fs::read_to_string(&path) {
            Ok(g) => g,
            Err(e) => {
                failures.push(format!(
                    "{}: missing golden {} ({e}); run `TWOCS_BLESS=1 cargo test --test golden_figures` to create it",
                    def.id,
                    path.display()
                ));
                continue;
            }
        };
        if let Err(msg) = diff_csv(def.id, &golden, &regenerated) {
            failures.push(msg);
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden figure(s) drifted:\n{}\n\
         (if the change is intentional, re-bless with TWOCS_BLESS=1)",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn no_orphan_goldens() {
    // Every CSV in out/ must correspond to a registered experiment, so a
    // renamed experiment cannot silently leave its stale golden behind.
    // `frontier` is the one non-experiment artifact: the adaptive
    // refinement golden, owned by tests/golden_frontier.rs.
    let mut ids: Vec<&str> = experiments::all().iter().map(|d| d.id).collect();
    ids.push("frontier");
    let mut orphans = Vec::new();
    for entry in std::fs::read_dir(out_dir()).expect("out/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "csv") {
            let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
            if !ids.contains(&stem.as_str()) {
                orphans.push(stem);
            }
        }
    }
    assert!(
        orphans.is_empty(),
        "goldens without an experiment: {orphans:?}"
    );
}

#[test]
fn tolerance_accepts_float_noise_but_rejects_drift() {
    assert!(diff_csv("t", "x,1.0000001\n", "x,1.0000002\n").is_ok());
    assert!(diff_csv("t", "x,100\n", "x,101\n").is_err());
    assert!(diff_csv("t", "# a\nx,1\n", "# b\nx,1\n").is_err());
    assert!(diff_csv("t", "x,1\n", "x,1,2\n").is_err());
    assert!(diff_csv("t", "x,1\ny,2\n", "x,1\n").is_err());
    assert!(diff_csv("t", "label,text\n", "label,other\n").is_err());
    assert!(
        diff_csv("t", "x,0.0000000001\n", "x,0\n").is_ok(),
        "abs floor"
    );
}
