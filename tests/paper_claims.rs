//! Integration tests asserting the paper's headline claims end-to-end,
//! spanning all crates: hardware models → workload generation → simulation
//! → analysis.
//!
//! These are *shape* checks with generous tolerances: the substrate is a
//! simulator, so orderings, monotonicity, crossovers, and coarse bands are
//! the reproducible quantities — not absolute microseconds.

use twocs_core::evolution::{serialized_bands, HIGHLIGHTED_CONFIGS};
use twocs_core::serialized::{comm_fraction, sweep_hyper, Method};
use twocs_core::{case_study, overlapped, trends};
use twocs_hw::{DeviceSpec, HwEvolution, Precision};
use twocs_opmodel::cost_accounting;
use twocs_opmodel::validation;
use twocs_transformer::ParallelConfig;

fn mi210() -> DeviceSpec {
    DeviceSpec::mi210()
}

#[test]
fn claim_serialized_comm_up_to_half_of_training_time_today() {
    // Abstract: "up to 50% of a future Transformer's training time will
    // be spent communicating data."
    let worst = HIGHLIGHTED_CONFIGS
        .iter()
        .map(|&(h, sl, tp)| {
            comm_fraction(
                &mi210(),
                &sweep_hyper(h, sl, 1),
                &ParallelConfig::new().tensor(tp),
                Method::Simulation,
            )
        })
        .fold(0.0f64, f64::max);
    assert!(
        (0.40..=0.60).contains(&worst),
        "worst-case fraction {worst}"
    );
}

#[test]
fn claim_75_percent_under_4x_hardware_evolution() {
    // Abstract: "> 75% of training execution" under continued hardware
    // trends.
    let bands = serialized_bands(&mi210(), Method::Simulation);
    let (scale, (_, hi)) = bands[2];
    assert_eq!(scale, 4.0);
    assert!((0.68..=0.88).contains(&(hi / 100.0)), "4x high end {hi}%");
}

#[test]
fn claim_hidden_communication_becomes_exposed() {
    // Abstract: "communication which is hidden by overlapped computation
    // in today's models often cannot be hidden in future, larger models."
    let today = overlapped::overlap_pct(&mi210(), 4096, 2048, 16, 4);
    assert!(today < 100.0, "hidden today: {today}%");
    let future = HwEvolution::flop_vs_bw(4.0).apply(&mi210());
    let evolved = overlapped::overlap_pct(&future, 4096, 2048, 16, 4);
    assert!(evolved > 100.0, "exposed in the future: {evolved}%");
}

#[test]
fn claim_edge_and_slack_erode_with_model_scaling() {
    // §3.5 / Fig. 7: slack -75%, edge -80% from BERT to the PaLM era.
    let fig = trends::normalized_scaling_figure();
    let slack_final = fig.series[0].points.last().unwrap().1;
    let edge_final = fig.series[1].points.last().unwrap().1;
    assert!(slack_final < 0.4, "slack should erode: {slack_final}");
    assert!(edge_final < 0.35, "edge should erode: {edge_final}");
    // And both started at 1.0 (BERT-normalized).
    assert!((fig.series[0].points[0].1 - 1.0).abs() < 1e-9);
    assert!((fig.series[1].points[0].1 - 1.0).abs() < 1e-9);
}

#[test]
fn claim_operator_models_are_accurate() {
    // §4.3.8 / Fig. 15: GEMM <15%, LayerNorm ~7%, all-reduce ~11% geomean
    // error.
    for sweep in validation::figure15_suite(&mi210()) {
        let err = sweep.geomean_error();
        assert!(
            err < 0.20,
            "{}: geomean error {:.1}%",
            sweep.label,
            100.0 * err
        );
    }
}

#[test]
fn claim_profiling_strategy_saves_three_orders_of_magnitude() {
    let report = cost_accounting::account(&mi210());
    assert!(report.speedup() > 1_000.0, "speedup {}", report.speedup());
    assert!(
        (1.3..=1.7).contains(&report.roi_speedup()),
        "ROI speedup {}",
        report.roi_speedup()
    );
    assert!(report.configs >= 150, "sweep of {} configs", report.configs);
}

#[test]
fn claim_case_study_47_percent_serialized() {
    // Fig. 14: 47% serialized, 9% overlapped (hidden) at H=64K, SL=4K,
    // B=1, TP=128, 4x flop-vs-bw.
    let r = case_study::run(case_study::Scenario::IntraNode, 4.0);
    assert!(
        (0.42..=0.60).contains(&r.serialized_fraction),
        "serialized {:.1}%",
        100.0 * r.serialized_fraction
    );
    assert!(r.dp_fully_hidden());
}

#[test]
fn claim_fraction_monotone_in_tp_and_antitone_in_h() {
    // Fig. 10's structure across the whole sweep.
    let device = mi210();
    for &(h, sl) in &[(16_384u64, 2048u64), (65_536, 2048)] {
        let hyper = sweep_hyper(h, sl, 1);
        let mut prev = 0.0;
        for tp in [16u64, 64, 256] {
            let f = comm_fraction(
                &device,
                &hyper,
                &ParallelConfig::new().tensor(tp),
                Method::Simulation,
            );
            assert!(
                f > prev,
                "H={h}: fraction must grow with TP ({f} after {prev})"
            );
            prev = f;
        }
    }
}

#[test]
fn claim_reduced_precision_preserves_takeaways() {
    // §6.2: compute scales super-linearly with narrower formats while
    // bytes scale linearly, so communication fractions do not improve —
    // the Comp-vs-Comm takeaways carry over.
    let device = mi210();
    let par = ParallelConfig::new().tensor(64);
    let fp16 = comm_fraction(
        &device,
        &sweep_hyper(16_384, 2048, 1),
        &par,
        Method::Simulation,
    );
    let fp32 = comm_fraction(
        &device,
        &sweep_hyper(16_384, 2048, 1).with_precision(Precision::Fp32),
        &par,
        Method::Simulation,
    );
    // fp16 compute is 4x faster but bytes only halve: fraction is at
    // least as high as at fp32.
    assert!(fp16 >= fp32 * 0.95, "fp16 {fp16} vs fp32 {fp32}");
}

#[test]
fn claim_hybrid_tp_pp_stays_in_the_4x_serialized_band() {
    // §6.1 extension (Anthony et al.'s hybrid-parallelism traffic
    // characterization): splitting a 4x-evolved future device across
    // TP *and* pipeline stages trades all-reduce volume for p2p
    // activations plus a microbatch bubble, but the serialized
    // communication fraction stays inside the paper's 40-75% band for
    // the highlighted large-H, high-TP configurations.
    use twocs_core::sweep::{eval_grid_point, GridPoint, Workload};
    let device = mi210();
    for (h, stages, micro_batches) in [(8192, 2, 4), (8192, 4, 4), (16_384, 4, 4)] {
        let point = GridPoint {
            stages,
            micro_batches,
            ..GridPoint::new(h, 2048, 64, 4.0)
        };
        let (serialized, _) =
            eval_grid_point(&device, point, 1, Method::Projection, Workload::Training);
        assert!(
            (40.0..=75.0).contains(&serialized),
            "H={h} TP=64 stages={stages}: serialized {serialized}% outside the 40-75% band"
        );
    }
}
