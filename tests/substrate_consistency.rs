//! Cross-substrate consistency checks: the analytic cost models, the
//! schedule-level simulation, and the workload-level simulation must agree
//! wherever they describe the same physics.

use twocs_collectives::algorithm::{Algorithm, Collective};
use twocs_collectives::CollectiveCostModel;
use twocs_hw::topology::Topology;
use twocs_hw::DeviceSpec;
use twocs_sim::Engine;

/// The α–β link cost model must track discrete-event execution of the
/// actual transfer schedules across participant counts and payload sizes.
#[test]
fn analytic_ring_cost_tracks_simulated_schedules() {
    let device = DeviceSpec::mi210();
    let link = device.network().intra_node();
    let model = CollectiveCostModel::new(link.latency(), link.ramp_bytes());
    for n in [2usize, 4, 8, 16] {
        for elements in [1usize << 18, 1 << 21, 1 << 24] {
            let schedule = Algorithm::Ring
                .schedule(Collective::AllReduce, n, elements)
                .unwrap();
            let (graph, _) = schedule.to_task_graph(4, &link);
            let simulated = Engine::new().run(&graph).unwrap().makespan().as_secs_f64();
            let analytic = model.time_on_link(
                Collective::AllReduce,
                Algorithm::Ring,
                elements as u64 * 4,
                n,
                &link,
            );
            let err = ((simulated - analytic) / simulated).abs();
            assert!(
                err < 0.05,
                "n={n}, elements={elements}: sim {simulated} vs analytic {analytic} ({err})"
            );
        }
    }
}

/// The hierarchical two-level all-reduce cost must beat the naive
/// (topology-oblivious) ring simulated over the same multi-node topology —
/// the reason the two-level algorithm exists.
#[test]
fn hierarchical_cost_beats_naive_ring_across_nodes() {
    let device = DeviceSpec::mi210();
    let net = device.network();
    let model = CollectiveCostModel::default();
    let topo = Topology::Hierarchical {
        nodes: 4,
        node_size: 4,
        intra: net.intra_node(),
        inter: net.inter_node(),
    };
    let bytes = 128u64 << 20;
    let hierarchical = model.allreduce_time_on_topology(bytes, &topo, net);

    // Naive ring over the same 16 ranks, simulated on the topology.
    let schedule = Algorithm::Ring
        .schedule(Collective::AllReduce, 16, (bytes / 4) as usize)
        .unwrap();
    let (graph, _) = schedule.to_task_graph_on_topology(4, &topo);
    let naive = Engine::new().run(&graph).unwrap().makespan().as_secs_f64();

    assert!(
        hierarchical < naive,
        "two-level {hierarchical}s should beat naive cross-node ring {naive}s"
    );
}

/// Per-op pricing summed serially must equal the simulated makespan for a
/// purely serialized (TP-only) iteration — the simulator adds overlap, not
/// time.
#[test]
fn serial_sum_matches_simulated_tp_only_iteration() {
    use twocs_opmodel::Profiler;
    use twocs_transformer::graph_builder::IterationBuilder;
    use twocs_transformer::{Hyperparams, ParallelConfig};

    let device = DeviceSpec::mi210();
    let hyper = Hyperparams::builder(8192)
        .heads(64)
        .layers(3)
        .seq_len(2048)
        .batch(1)
        .build()
        .unwrap();
    let parallel = ParallelConfig::new().tensor(16);
    let profiler = Profiler::new(device.clone());
    let layer = profiler.profile_layer(&hyper, &parallel);
    let serial = (layer.compute_time() + layer.serialized_comm_time()) * 3.0;
    let graph = IterationBuilder::new(&hyper, &parallel, &device)
        .optimizer(false)
        .build_training();
    let simulated = Engine::new().run(&graph).unwrap().makespan().as_secs_f64();
    let err = ((simulated - serial) / serial).abs();
    assert!(err < 1e-6, "serial {serial} vs simulated {simulated}");
}

/// The projection's all-reduce curve and the collective cost model are
/// the same physics: predictions at profiled sizes must match exactly,
/// and between grid points within the interpolation error.
#[test]
fn ar_size_model_consistent_with_cost_model() {
    use twocs_opmodel::ArSizeModel;
    let device = DeviceSpec::mi210();
    let cm = CollectiveCostModel::default();
    let model = ArSizeModel::profile(device.network(), &cm, 4, &ArSizeModel::default_sizes());
    for bytes in [300_000u64, 5_000_000, 123_456_789] {
        let predicted = model.predict(bytes);
        let direct = cm.allreduce_time(bytes, 4, device.network());
        let err = ((predicted - direct) / direct).abs();
        assert!(err < 0.05, "bytes={bytes}: {predicted} vs {direct}");
    }
}

/// Multi-ring schedules must agree with the node's advertised algorithmic
/// all-reduce bandwidth direction: more rings, more bandwidth — up to the
/// number of edge-disjoint directed rings the node supports.
#[test]
fn multi_ring_bandwidth_improves_until_link_reuse() {
    use twocs_collectives::algorithm::multi_ring_allreduce;
    use twocs_hw::network::LinkSpec;
    let link = LinkSpec::new(50e9, 0.0, 0.0).unwrap();
    let elements = 4usize << 20;
    let time = |rings: usize| {
        let schedule = multi_ring_allreduce(4, elements, rings);
        let (graph, _) = schedule.to_task_graph(4, &link);
        Engine::new().run(&graph).unwrap().makespan().as_secs_f64()
    };
    let one = time(1);
    let two = time(2);
    assert!(two < 0.6 * one, "two rings should nearly halve time");
    // A 4-node all-to-all graph only has two edge-disjoint directed
    // Hamiltonian cycles in our stride family; a third ring reuses links
    // and cannot beat two.
    let three = time(3);
    assert!(three >= two, "third ring reuses links: {three} vs {two}");
}
