//! End-to-end workflows across crates: the paths a downstream user of the
//! library would actually take.

use twocs_hw::{DeviceSpec, Precision};
use twocs_sim::Engine;
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::memory;
use twocs_transformer::moe::{moe_ffn_forward, MoeConfig};
use twocs_transformer::pipeline::{boundary_transfer, PipelineSchedule};
use twocs_transformer::{zoo, Hyperparams, ParallelConfig};

/// TP candidates valid for a model: divisors of its head count (Megatron
/// requires `TP | heads` and `TP | H`).
fn tp_candidates(hyper: &Hyperparams) -> Vec<u64> {
    (1..=hyper.heads())
        .filter(|tp| hyper.heads().is_multiple_of(*tp) && hyper.hidden().is_multiple_of(*tp))
        .collect()
}

#[test]
fn zoo_to_simulation_workflow() {
    // Pick a published model, find its TP, simulate an iteration.
    let device = DeviceSpec::mi210();
    let model = zoo::by_name("T-NLG").expect("in the zoo");
    let hyper = model.hyperparams(1);
    let tp = memory::required_tp(&hyper, &device, &tp_candidates(&hyper)).expect("fits at some TP");
    assert!(tp >= 2, "a 17B model cannot fit one 64 GiB device");
    let parallel = ParallelConfig::new().tensor(tp).data(4);
    parallel
        .validate(&hyper)
        .expect("candidates are valid shardings");
    let graph = IterationBuilder::new(&hyper, &parallel, &device)
        .layers(4)
        .build_training();
    let report = Engine::new().run(&graph).expect("valid graph");
    assert!(report.makespan().as_secs_f64() > 0.0);
    assert!(report.comm_fraction() > 0.0 && report.comm_fraction() < 1.0);
}

#[test]
fn every_zoo_model_gets_a_memory_verdict() {
    let device = DeviceSpec::mi210();
    let mut fits_on_one = 0;
    for model in zoo::all() {
        let hyper = model.hyperparams(1);
        if memory::fits(&hyper, &ParallelConfig::new(), &device, 0.1) {
            fits_on_one += 1;
        }
    }
    // Only the small early models fit a single device.
    assert!(
        (1..=4).contains(&fits_on_one),
        "{fits_on_one} models fit one GPU"
    );
}

#[test]
fn training_beats_inference_and_scales_with_layers() {
    let device = DeviceSpec::mi210();
    let hyper = Hyperparams::builder(4096)
        .heads(32)
        .layers(8)
        .seq_len(2048)
        .batch(1)
        .build()
        .unwrap();
    let par = ParallelConfig::new().tensor(8);
    let builder = IterationBuilder::new(&hyper, &par, &device);
    let train = Engine::new().run(&builder.build_training()).unwrap();
    let infer = Engine::new().run(&builder.build_inference()).unwrap();
    // Training = forward + ~2x backward (+ optimizer): at least 2.5x.
    let ratio = train.makespan().as_secs_f64() / infer.makespan().as_secs_f64();
    assert!(ratio > 2.5, "train/inference ratio {ratio}");
}

#[test]
fn moe_adds_critical_path_alltoall() {
    // §6.1.1: expert parallelism puts two all-to-alls per MoE layer on the
    // critical path.
    let hyper = Hyperparams::builder(4096)
        .heads(32)
        .seq_len(2048)
        .batch(1)
        .build()
        .unwrap();
    let par = ParallelConfig::new().tensor(4).expert(8);
    let moe = MoeConfig::switch(8);
    let ops = moe_ffn_forward(&hyper, &par, &moe);
    let serialized: usize = ops.iter().filter(|o| o.is_serialized_comm()).count();
    assert!(serialized >= 3, "TP AR + 2 all-to-alls, got {serialized}");

    // And MoE compute is far below the equal-capacity dense model.
    let ratio = twocs_transformer::moe::flops_ratio_vs_dense(&hyper, &par, &moe);
    assert!(ratio < 0.3, "MoE flops ratio {ratio}");
}

#[test]
fn pipeline_bubble_fraction_and_transfer_costs() {
    // §6.1.2: few micro-batches -> large bubble; the boundary transfer is
    // tiny next to a stage's compute.
    let device = DeviceSpec::mi210();
    let hyper = Hyperparams::builder(8192)
        .heads(64)
        .layers(32)
        .seq_len(2048)
        .batch(8)
        .build()
        .unwrap();
    let schedule = PipelineSchedule::new(8, 8);
    assert!((schedule.bubble_fraction() - 7.0 / 15.0).abs() < 1e-12);

    let op = boundary_transfer(&hyper, &schedule);
    let comm_model = twocs_collectives::CollectiveCostModel::default();
    let p2p = op.time_on(&device, hyper.precision(), &comm_model);

    // Stage time for the full batch: 4 layers of forward compute.
    let par = ParallelConfig::new();
    let profiler = twocs_opmodel::Profiler::new(device.clone());
    let layer = profiler.profile_layer(&hyper, &par);
    let stage = layer.compute_time() * 4.0;
    let iter = schedule.iteration_time(stage, p2p);
    assert!(iter > stage, "pipelining can't beat one stage's work");
    assert!(
        p2p < 0.05 * stage,
        "p2p {p2p} should be small next to {stage}"
    );
}

#[test]
fn precision_sweep_shifts_compute_but_not_bytes_linearly() {
    // §6.2: fp16 -> fp8 doubles peak compute, halves bytes; fraction of
    // communication should not fall.
    let device = DeviceSpec::mi210();
    let par = ParallelConfig::new().tensor(64);
    let frac = |prec: Precision| {
        let hyper = Hyperparams::builder(16_384)
            .heads(256)
            .layers(2)
            .seq_len(2048)
            .batch(1)
            .precision(prec)
            .build()
            .unwrap();
        let graph = IterationBuilder::new(&hyper, &par, &device)
            .optimizer(false)
            .build_training();
        Engine::new().run(&graph).unwrap().comm_fraction()
    };
    let f32f = frac(Precision::Fp32);
    let f16f = frac(Precision::Fp16);
    let f8f = frac(Precision::Fp8);
    assert!(f16f >= 0.9 * f32f, "fp16 {f16f} vs fp32 {f32f}");
    assert!(f8f >= 0.9 * f16f, "fp8 {f8f} vs fp16 {f16f}");
}

#[test]
fn pin_mode_halves_serialized_comm_time() {
    // §5 Technique 2: processing-in-network doubles effective all-reduce
    // bandwidth, roughly halving serialized communication time.
    use twocs_hw::PinMode;
    let device = DeviceSpec::mi210();
    let hyper = Hyperparams::builder(16_384)
        .heads(256)
        .layers(2)
        .seq_len(2048)
        .batch(1)
        .build()
        .unwrap();
    let par = ParallelConfig::new().tensor(64);
    let base = Engine::new()
        .run(
            &IterationBuilder::new(&hyper, &par, &device)
                .optimizer(false)
                .build_training(),
        )
        .unwrap();
    let pin_device = device
        .clone()
        .with_network(device.network().with_pin_mode(PinMode::InSwitch));
    let pin = Engine::new()
        .run(
            &IterationBuilder::new(&hyper, &par, &pin_device)
                .optimizer(false)
                .build_training(),
        )
        .unwrap();
    let ratio = base.comm_time().as_secs_f64() / pin.comm_time().as_secs_f64();
    assert!((1.6..=2.2).contains(&ratio), "PIN comm speedup {ratio}");
    assert!(pin.makespan() < base.makespan());
}

#[test]
fn chrome_trace_export_is_well_formed_for_full_iteration() {
    let device = DeviceSpec::mi210();
    let hyper = Hyperparams::builder(4096)
        .heads(32)
        .layers(2)
        .seq_len(1024)
        .batch(1)
        .build()
        .unwrap();
    let par = ParallelConfig::new().tensor(8).data(4);
    let timeline = Engine::new()
        .run_trace(&IterationBuilder::new(&hyper, &par, &device).build_training())
        .unwrap();
    let json = timeline.to_chrome_trace();
    assert!(json.starts_with('[') && json.ends_with(']'));
    // One record per op per layer plus DP ARs and optimizer.
    assert!(timeline.records().len() > 50);
    assert_eq!(
        json.matches("\"ph\":\"X\"").count(),
        timeline.records().len()
    );
}
