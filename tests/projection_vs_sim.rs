//! Cross-validation of the paper's operator-model projection against the
//! discrete-event simulator over moderate hyperparameter ranges — the
//! regime where the paper reports <15% error (§4.3.8).
//!
//! Large extrapolations (64× the baseline width at 256-way slicing)
//! deliberately exceed that error, exactly as the paper's caveat predicts
//! ("operation efficiency improves with size ... thus their runtime does
//! not always increase as expected"); the final test pins that behaviour
//! down instead of hiding it.

use twocs_hw::DeviceSpec;
use twocs_opmodel::projection::ProjectionModel;
use twocs_opmodel::stats::geomean_error;
use twocs_sim::Engine;
use twocs_transformer::graph_builder::IterationBuilder;
use twocs_transformer::{Hyperparams, ParallelConfig};

fn baseline() -> Hyperparams {
    Hyperparams::builder(1024)
        .heads(16)
        .seq_len(512)
        .batch(4)
        .build()
        .unwrap()
}

fn simulated_iteration_seconds(hyper: &Hyperparams, parallel: &ParallelConfig) -> f64 {
    let device = DeviceSpec::mi210();
    let graph = IterationBuilder::new(hyper, parallel, &device)
        .optimizer(false)
        .build_training();
    Engine::new().run(&graph).unwrap().makespan().as_secs_f64()
}

#[test]
fn projection_tracks_simulation_for_moderate_scaling() {
    // 1x-8x the baseline in H and SL, modest TP: the paper's validated
    // regime.
    let device = DeviceSpec::mi210();
    let model = ProjectionModel::from_baseline(&baseline(), &device);

    let mut projected = Vec::new();
    let mut simulated = Vec::new();
    for (h, heads, sl, tp) in [
        (2048u64, 16u64, 512u64, 1u64),
        (2048, 16, 1024, 2),
        (4096, 32, 1024, 4),
        (4096, 32, 2048, 8),
        (8192, 64, 2048, 8),
    ] {
        let hyper = Hyperparams::builder(h)
            .heads(heads)
            .layers(2)
            .seq_len(sl)
            .batch(1)
            .build()
            .unwrap();
        let parallel = ParallelConfig::new().tensor(tp);
        let proj = model.project(&hyper, &parallel);
        projected.push(proj.iteration_time());
        simulated.push(simulated_iteration_seconds(&hyper, &parallel));
    }
    let err = geomean_error(&projected, &simulated);
    assert!(
        err < 0.25,
        "moderate-range projection error {:.1}% (projected {projected:?} vs simulated {simulated:?})",
        100.0 * err
    );
}

#[test]
fn projection_and_simulation_agree_on_who_wins() {
    // Even where absolute errors grow, the *ordering* of configurations by
    // communication fraction must agree — that is what the paper's
    // conclusions rest on.
    let device = DeviceSpec::mi210();
    let model = ProjectionModel::from_baseline(&baseline(), &device);

    let configs = [(8192u64, 8u64), (8192, 32), (16_384, 32), (16_384, 128)];
    let mut proj_fracs = Vec::new();
    let mut sim_fracs = Vec::new();
    for &(h, tp) in &configs {
        let hyper = Hyperparams::builder(h)
            .heads(256)
            .layers(2)
            .seq_len(2048)
            .batch(1)
            .build()
            .unwrap();
        let parallel = ParallelConfig::new().tensor(tp);
        proj_fracs.push(model.project(&hyper, &parallel).serialized_comm_fraction());
        let graph = IterationBuilder::new(&hyper, &parallel, &device)
            .optimizer(false)
            .build_training();
        sim_fracs.push(Engine::new().run(&graph).unwrap().comm_fraction());
    }
    // Rank agreement via pairwise concordance.
    for i in 0..configs.len() {
        for j in i + 1..configs.len() {
            let p = proj_fracs[i].partial_cmp(&proj_fracs[j]).unwrap();
            let s = sim_fracs[i].partial_cmp(&sim_fracs[j]).unwrap();
            assert_eq!(
                p, s,
                "ordering disagreement between {:?} and {:?}: proj {proj_fracs:?}, sim {sim_fracs:?}",
                configs[i], configs[j]
            );
        }
    }
}

#[test]
fn extreme_extrapolation_error_has_the_documented_sign() {
    // Projecting 64x the baseline width assumes the baseline's GEMM
    // efficiency; real (simulated) kernels at those sizes are *more*
    // efficient, so the projection overestimates compute time — the
    // paper's documented failure mode.
    let device = DeviceSpec::mi210();
    let model = ProjectionModel::from_baseline(&baseline(), &device);
    let hyper = Hyperparams::builder(65_536)
        .heads(256)
        .layers(2)
        .seq_len(2048)
        .batch(1)
        .build()
        .unwrap();
    let parallel = ParallelConfig::new().tensor(1);
    let proj = model.project(&hyper, &parallel);
    let sim = simulated_iteration_seconds(&hyper, &parallel);
    let ratio = proj.iteration_time() / sim;
    assert!(
        ratio > 1.0,
        "extrapolated projection should overestimate, got ratio {ratio}"
    );
    assert!(ratio < 3.0, "but not absurdly: {ratio}");
}
