//! CLI argument validation: `--jobs` must be a positive integer
//! everywhere it is accepted. Historically `--jobs 0` and garbage values
//! were silently swallowed (a zero-thread pool, or a fallback to the
//! default); they are usage errors now.

use std::process::{Command, Output};

fn twocs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_twocs"))
        .args(args)
        .output()
        .expect("twocs binary runs")
}

#[test]
fn jobs_zero_is_rejected_with_a_usage_error() {
    for cmd in [
        vec!["run", "table2", "--jobs", "0"],
        vec!["sweep", "--jobs", "0"],
        vec!["serve", "--addr", "127.0.0.1:0", "--jobs", "0"],
        vec!["worker", "--connect", "127.0.0.1:1", "--jobs", "0"],
    ] {
        let out = twocs(&cmd);
        assert!(!out.status.success(), "`twocs {}` must fail", cmd.join(" "));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--jobs 0") && stderr.contains("positive"),
            "`twocs {}` stderr names the bad flag: {stderr}",
            cmd.join(" ")
        );
        assert!(out.stdout.is_empty(), "no partial output on a usage error");
    }
}

#[test]
fn non_numeric_jobs_is_rejected() {
    for bad in ["x", "-1", "1.5", ""] {
        let out = twocs(&["sweep", "--jobs", bad]);
        assert!(!out.status.success(), "--jobs {bad:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("positive"), "--jobs {bad:?}: {stderr}");
    }
}

#[test]
fn jobs_without_a_value_is_rejected() {
    let out = twocs(&["sweep", "--jobs"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--jobs requires a value"), "{stderr}");
}

#[test]
fn valid_jobs_still_works() {
    let out = twocs(&[
        "sweep", "--csv", "--h", "4096", "--sl", "2048", "--tp", "16", "--jobs", "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty());
}

#[test]
fn sweep_jobs_defaults_to_available_parallelism() {
    let out = twocs(&[
        "sweep", "--csv", "--h", "4096", "--sl", "2048", "--tp", "16",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let want = format!(
        "on {expected} worker thread{}",
        if expected == 1 { "" } else { "s" }
    );
    assert!(
        stderr.contains(&want),
        "summary should report {expected} default workers: {stderr}"
    );
}

#[test]
fn sweep_rejects_unknown_planner() {
    let out = twocs(&["sweep", "--planner", "warp"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown planner"), "{stderr}");
}

#[test]
fn worker_requires_connect() {
    let out = twocs(&["worker"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--connect"), "{stderr}");
}
