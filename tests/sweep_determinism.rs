//! End-to-end determinism of the parallel sweep engine: whatever the
//! worker-thread count, the CLI's stdout must be byte-identical — the
//! summary (timings, cache rates) goes to stderr precisely so that CSV
//! artifacts can be diffed across machines and `--jobs` settings.

use std::process::{Command, Output};
use twocs::analysis::experiments;
use twocs::analysis::sweep::{run_experiments, run_tasks};
use twocs::hw::DeviceSpec;

fn twocs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_twocs"))
        .args(args)
        .output()
        .expect("twocs binary runs")
}

#[test]
fn run_all_csv_is_byte_identical_across_jobs() {
    let serial = twocs(&["run", "all", "--csv", "--jobs", "1"]);
    let parallel = twocs(&["run", "all", "--csv", "--jobs", "8"]);
    assert!(serial.status.success(), "serial run failed");
    assert!(parallel.status.success(), "parallel run failed");
    assert_eq!(
        serial.stdout, parallel.stdout,
        "parallel stdout diverged from serial"
    );
    // The summary lands on stderr, not in the CSV stream.
    let summary = String::from_utf8_lossy(&parallel.stderr);
    assert!(summary.contains("worker threads"), "{summary}");
    assert!(summary.contains("gemm-time:"), "{summary}");
}

#[test]
fn sweep_csv_is_byte_identical_across_jobs() {
    let grid = ["--h", "4096,16384", "--sl", "2048", "--tp", "16,64"];
    let mut serial_args = vec!["sweep", "--csv", "--jobs", "1"];
    serial_args.extend_from_slice(&grid);
    let mut parallel_args = vec!["sweep", "--csv", "--jobs", "8"];
    parallel_args.extend_from_slice(&grid);
    let serial = twocs(&serial_args);
    let parallel = twocs(&parallel_args);
    assert!(serial.status.success() && parallel.status.success());
    assert_eq!(serial.stdout, parallel.stdout);
    assert!(!serial.stdout.is_empty());
}

#[test]
fn panicking_experiment_fails_alone_and_pool_survives() {
    fn boom(_: &DeviceSpec) -> twocs::analysis::ExperimentOutput {
        panic!("injected failure");
    }
    let mut defs = vec![experiments::by_id("table2").expect("table2 registered")];
    defs.push(twocs::analysis::ExperimentDef {
        id: "boom",
        title: "injected",
        paper_claim: "",
        run: boom,
    });
    defs.extend(experiments::by_id("fig11"));
    let run = run_experiments(&DeviceSpec::mi210(), &defs, 4);
    assert_eq!(run.summary.failures, 1);
    assert!(run.results[0].output.is_ok());
    let err = run.results[1].output.as_ref().unwrap_err();
    assert!(err.contains("injected failure"), "{err}");
    assert!(run.results[2].output.is_ok(), "pool died after a panic");

    // The same pool primitive keeps scheduling after repeated panics.
    let again = run_tasks(2, 8, |i| {
        assert!(i % 2 == 0, "odd task {i}");
        i
    });
    assert_eq!(again.iter().filter(|t| t.result.is_err()).count(), 4);
    assert_eq!(again.iter().filter(|t| t.result.is_ok()).count(), 4);
}
