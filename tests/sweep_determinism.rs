//! End-to-end determinism of the parallel sweep engine: whatever the
//! worker-thread count, the CLI's stdout must be byte-identical — the
//! summary (timings, cache rates) goes to stderr precisely so that CSV
//! artifacts can be diffed across machines and `--jobs` settings.

use std::process::{Command, Output};
use twocs::analysis::experiments;
use twocs::analysis::sweep::{run_experiments, run_tasks};
use twocs::hw::DeviceSpec;

fn twocs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_twocs"))
        .args(args)
        .output()
        .expect("twocs binary runs")
}

/// Run `twocs` with `TWOCS_TRACE_CLOCK=logical` and `--trace` into a
/// temp file, returning `(stdout, trace JSON)`.
fn twocs_traced(args: &[&str], tag: &str) -> (Vec<u8>, String) {
    let path = std::env::temp_dir().join(format!("twocs-trace-{tag}-{}.json", std::process::id()));
    let mut full: Vec<&str> = args.to_vec();
    let path_str = path.to_str().expect("utf-8 temp path").to_owned();
    full.extend_from_slice(&["--trace", &path_str]);
    let out = Command::new(env!("CARGO_BIN_EXE_twocs"))
        .args(&full)
        .env("TWOCS_TRACE_CLOCK", "logical")
        .output()
        .expect("twocs binary runs");
    assert!(out.status.success(), "traced run failed: {full:?}");
    let trace = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    (out.stdout, trace)
}

#[test]
fn run_all_csv_is_byte_identical_across_jobs() {
    let serial = twocs(&["run", "all", "--csv", "--jobs", "1"]);
    let parallel = twocs(&["run", "all", "--csv", "--jobs", "8"]);
    assert!(serial.status.success(), "serial run failed");
    assert!(parallel.status.success(), "parallel run failed");
    assert_eq!(
        serial.stdout, parallel.stdout,
        "parallel stdout diverged from serial"
    );
    // The summary lands on stderr, not in the CSV stream.
    let summary = String::from_utf8_lossy(&parallel.stderr);
    assert!(summary.contains("worker threads"), "{summary}");
    assert!(summary.contains("gemm-time:"), "{summary}");
}

#[test]
fn sweep_csv_is_byte_identical_across_jobs() {
    let grid = ["--h", "4096,16384", "--sl", "2048", "--tp", "16,64"];
    let mut serial_args = vec!["sweep", "--csv", "--jobs", "1"];
    serial_args.extend_from_slice(&grid);
    let mut parallel_args = vec!["sweep", "--csv", "--jobs", "8"];
    parallel_args.extend_from_slice(&grid);
    let serial = twocs(&serial_args);
    let parallel = twocs(&parallel_args);
    assert!(serial.status.success() && parallel.status.success());
    assert_eq!(serial.stdout, parallel.stdout);
    assert!(!serial.stdout.is_empty());
}

/// The new MoE/PP/SP axis flags and the workload selector keep the
/// byte-identity contract: `--jobs 1` vs `--jobs 8` CSVs are identical,
/// the extended columns appear, and each workload produces its own
/// deterministic artifact.
#[test]
fn extended_axis_sweep_csv_is_byte_identical_across_jobs() {
    let grid = [
        "--h",
        "4096,16384",
        "--sl",
        "2048",
        "--tp",
        "16,64",
        "--flop-vs-bw",
        "1,4",
        "--experts",
        "1,8",
        "--top-k",
        "2",
        "--stages",
        "1,4",
        "--micro-batches",
        "4",
        "--sp",
        "1,2",
        "--method",
        "proj",
    ];
    let mut artifacts = Vec::new();
    for workload in ["training", "prefill", "decode"] {
        let mut serial_args = vec!["sweep", "--csv", "--jobs", "1", "--workload", workload];
        serial_args.extend_from_slice(&grid);
        let mut parallel_args = vec!["sweep", "--csv", "--jobs", "8", "--workload", workload];
        parallel_args.extend_from_slice(&grid);
        let serial = twocs(&serial_args);
        let parallel = twocs(&parallel_args);
        assert!(
            serial.status.success() && parallel.status.success(),
            "{workload}"
        );
        assert_eq!(serial.stdout, parallel.stdout, "workload {workload}");
        let csv = String::from_utf8(serial.stdout).expect("utf-8 CSV");
        let header = csv.lines().next().expect("non-empty CSV");
        assert!(
            header.contains("experts") && header.contains("stages") && header.contains("sp"),
            "extended columns missing: {header}"
        );
        artifacts.push(csv);
    }
    // Prefill and decode weigh communication differently: the artifacts
    // must be per-workload, not a shared cache hit.
    assert_ne!(artifacts[0], artifacts[1], "training vs prefill");
    assert_ne!(artifacts[1], artifacts[2], "prefill vs decode");
}

/// A legacy invocation (no axis flags) still produces the exact pre-axis
/// 6-column CSV — the default axes never perturb existing artifacts.
#[test]
fn legacy_sweep_csv_keeps_the_six_column_header() {
    let out = twocs(&[
        "sweep", "--csv", "--h", "4096", "--sl", "2048", "--tp", "16,64",
    ]);
    assert!(out.status.success());
    let csv = String::from_utf8(out.stdout).expect("utf-8 CSV");
    assert!(
        csv.starts_with("H,SL,TP,flop_vs_bw,serialized_pct,overlap_pct\n"),
        "legacy header changed: {}",
        csv.lines().next().unwrap_or_default()
    );
}

#[test]
fn logical_clock_traces_are_byte_identical_across_jobs() {
    // The tentpole determinism claim: under the logical trace clock, the
    // Chrome-trace output of `twocs run` is byte-identical for any
    // worker count — worker identity is erased and every span lives in a
    // window derived from its task index, not from scheduling.
    let reference = twocs_traced(&["run", "all", "--csv", "--jobs", "1"], "run-j1");
    for jobs in ["4", "8"] {
        let traced = twocs_traced(&["run", "all", "--csv", "--jobs", jobs], "run-jn");
        assert_eq!(
            reference.1, traced.1,
            "logical trace diverged between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(reference.0, traced.0, "stdout diverged at --jobs {jobs}");
    }
    // And it is a well-formed Chrome-trace document with both sweep-pool
    // lifecycles and simulator kernels in it.
    twocs::obs::json::validate(&reference.1).expect("trace is valid JSON");
    assert!(reference.1.starts_with("{\"traceEvents\":["));
    assert!(reference.1.contains("\"cat\":\"task\""));
    assert!(reference.1.contains("\"cat\":\"gemm\""));
    assert!(reference.1.contains("sweep-pool"));
}

#[test]
fn sweep_trace_is_deterministic_and_stdout_unchanged_by_tracing() {
    let grid = [
        "sweep", "--csv", "--h", "4096", "--sl", "2048", "--tp", "16,32",
    ];
    let untraced = {
        let mut args = grid.to_vec();
        args.extend_from_slice(&["--jobs", "4"]);
        twocs(&args)
    };
    assert!(untraced.status.success());
    let mut traces = Vec::new();
    for jobs in ["1", "4", "8"] {
        let mut args = grid.to_vec();
        args.extend_from_slice(&["--jobs", jobs]);
        let (stdout, trace) = twocs_traced(&args, "sweep");
        // --trace must not perturb the CSV contract at any job count.
        assert_eq!(
            stdout, untraced.stdout,
            "--trace changed stdout at --jobs {jobs}"
        );
        traces.push(trace);
    }
    assert_eq!(
        traces[0], traces[1],
        "sweep trace diverged between jobs 1 and 4"
    );
    assert_eq!(
        traces[1], traces[2],
        "sweep trace diverged between jobs 4 and 8"
    );
    twocs::obs::json::validate(&traces[0]).expect("sweep trace is valid JSON");
}

#[test]
fn metrics_flag_reports_cache_hit_rates_on_stderr() {
    let out = twocs(&["run", "table2", "--csv", "--metrics"]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("metrics:"), "{stderr}");
    assert!(stderr.contains("cache.gemm_time:"), "{stderr}");
    assert!(stderr.contains("hit rate"), "{stderr}");
    assert!(stderr.contains("sweep.tasks_total"), "{stderr}");
    // Nothing observability-related leaks into stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("metrics:"), "{stdout}");
}

#[test]
fn panicking_experiment_fails_alone_and_pool_survives() {
    fn boom(_: &DeviceSpec) -> twocs::analysis::ExperimentOutput {
        panic!("injected failure");
    }
    let mut defs = vec![experiments::by_id("table2").expect("table2 registered")];
    defs.push(twocs::analysis::ExperimentDef {
        id: "boom",
        title: "injected",
        paper_claim: "",
        run: boom,
    });
    defs.extend(experiments::by_id("fig11"));
    let run = run_experiments(&DeviceSpec::mi210(), &defs, 4);
    assert_eq!(run.summary.failures, 1);
    assert!(run.results[0].output.is_ok());
    let err = run.results[1].output.as_ref().unwrap_err();
    assert!(err.contains("injected failure"), "{err}");
    assert!(run.results[2].output.is_ok(), "pool died after a panic");

    // The same pool primitive keeps scheduling after repeated panics.
    let again = run_tasks(2, 8, |i| {
        assert!(i % 2 == 0, "odd task {i}");
        i
    });
    assert_eq!(again.iter().filter(|t| t.result.is_err()).count(), 4);
    assert_eq!(again.iter().filter(|t| t.result.is_ok()).count(), 4);
}
