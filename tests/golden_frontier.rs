//! Golden snapshot for the adaptive crossover frontier (`twocs sweep
//! --refine comm-frac=0.3`): the refinement must keep finding the same
//! crossover ratios on the default grid, and keep doing it in under a
//! tenth of the dense grid's evaluation budget — the subsystem's
//! efficiency acceptance.
//!
//! Re-bless after an intentional model change:
//!
//! ```text
//! TWOCS_BLESS=1 cargo test --test golden_frontier
//! ```

use std::path::{Path, PathBuf};
use twocs::analysis::serialized::Method;
use twocs::analysis::sweep::GridSweep;
use twocs::hw::DeviceSpec;
use twocs::store::{refine_frontier, RefineSpec};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("out/frontier.csv")
}

/// The canonical frontier run: default grid, projection method, the
/// 30% serialized-communication threshold (the default grid tops out
/// near 40%, so 30% produces a genuine mix of crossed and above-range
/// shapes), CLI-default tolerance.
fn regenerate() -> twocs::store::FrontierResult {
    let sweep = GridSweep {
        method: Method::Projection,
        ..GridSweep::default()
    };
    let spec = RefineSpec::parse("comm-frac=0.3", 0.05).expect("valid refine spec");
    refine_frontier(&DeviceSpec::mi210(), &sweep, &spec).expect("frontier refines")
}

#[test]
fn frontier_matches_its_checked_in_golden() {
    let result = regenerate();
    let csv = result.table.to_csv();
    let path = golden_path();
    if std::env::var("TWOCS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&path, &csv)
            .unwrap_or_else(|e| panic!("cannot bless {}: {e}", path.display()));
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run `TWOCS_BLESS=1 cargo test --test golden_frontier`",
            path.display()
        )
    });
    // Regeneration is deterministic (pure closed-form bisection), so
    // the comparison is byte-exact — any drift is a model change that
    // must be blessed deliberately.
    assert_eq!(
        golden, csv,
        "frontier drifted; re-bless with TWOCS_BLESS=1 if intentional"
    );
}

#[test]
fn refinement_stays_under_a_tenth_of_the_dense_budget() {
    let result = regenerate();
    assert!(
        result.evaluations * 10 <= result.dense_equivalent,
        "refinement spent {} evaluations; dense equivalent is only {}",
        result.evaluations,
        result.dense_equivalent
    );
    // The frontier is non-trivial in both directions on the default
    // grid: some shapes cross 30%, some never reach it in range.
    let crossed = result
        .rows
        .iter()
        .filter(|r| matches!(r.crossing, twocs::store::Crossing::Crossed { .. }))
        .count();
    assert!(crossed > 0, "no shape crossed the 30% threshold");
    assert!(
        crossed < result.rows.len(),
        "every shape crossed; the frontier is degenerate"
    );
}
